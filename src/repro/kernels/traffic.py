"""The vectorized chunk kernel for demand-matrix trials.

:func:`~repro.core.traffic.traffic_specs` freezes a sweep point's
context (graph, p, router, demand factory) into one workload whose
specs differ only in their ``(trial, seed)`` tail — the same shape as
single-pair trials, but each trial routes *many* commodities.  That is
a fatter, more parallel-friendly unit for the lockstep frontier
engines: instead of one source per sweep, the whole chunk's
``(trial, commodity)`` rows advance together through one
:meth:`~repro.kernels.routing._EngineBase.route_pairs` call.

Pipeline per chunk:

1. **draw** — the registered model kernel draws every trial's mask as
   one matrix (bit-identical per row to the per-trial model);
2. **demands** — the demand factory runs per trial in plain Python,
   *the very same call* the sequential path makes, so the commodity
   lists are equal by construction;
3. **routing** — the commodity loop flattens into ``(trial,
   commodity)`` rows; each row carries its trial's mask and its own
   ``(source, target)`` pair, and the router's registered *pair
   kernel* replays the per-commodity probe sequences in lockstep
   blocks.  Unregistered routers — and pairs a kernel cannot replay
   (:class:`~repro.kernels.routing.PairRoutingUnsupported`) — keep the
   sequential :meth:`~repro.core.router.Router.route_demands` loop
   against cheap mask-backed models;
4. **summarise** — per-trial results regroup and flow through the one
   shared :func:`~repro.core.traffic.summarize_traffic`, so congestion
   floats are bit-identical to the sequential path.

The result is the same list of :class:`~repro.core.complexity.
TrialRecord` objects ``spec.execute()`` would produce, field for field
— gated by the golden + hypothesis parity suite in
``tests/kernels/test_traffic_kernel.py``.
"""

from __future__ import annotations

import traceback
from collections.abc import Sequence

import numpy as np

from repro.graphs.base import Graph
from repro.kernels.complexity import _MODEL_KERNELS
from repro.kernels.routing import (
    PairRoutingUnsupported,
    _block_rows,
    pair_router_kernel_for,
)
from repro.kernels.topology import EdgeIndex, build_edge_index
from repro.runtime.trial import TrialExecutionError
from repro.runtime.workload import Workload

__all__ = ["compile_traffic_chunk"]


class _TrafficChunk:
    """A compiled chunk runner for one ``run_traffic_trial`` workload."""

    def __init__(
        self,
        graph: Graph,
        index: EdgeIndex,
        model_kernel,
        router,
        pair_kernel,
        demand_factory,
        budget: int | None,
    ) -> None:
        self._graph = graph
        self._index = index
        self._model_kernel = model_kernel
        self._router = router
        self._pair_kernel = pair_kernel
        self._demand_factory = demand_factory
        self._budget = budget

    def stages(self) -> dict[str, str]:
        """Per-stage verdicts for the kernel audit.

        Demand trials have no conditioning step — every commodity is
        attempted — so the slot reports what the (commodity-batched)
        routing stage does, mirroring ``conditioning="none"`` chunks.
        """
        routing = (
            "kernel" if self._pair_kernel is not None else "per-trial"
        )
        return {
            "draw": "kernel",
            "conditioning": routing,
            "routing": routing,
        }

    def __call__(
        self, keys: Sequence[tuple], tails: Sequence[tuple]
    ) -> list:
        from repro.core.complexity import TrialRecord
        from repro.core.traffic import summarize_traffic

        seeds = [seed for _, seed in tails]
        try:
            draw = self._model_kernel.draw(seeds)
        except Exception as exc:
            raise TrialExecutionError(
                keys[0] if keys else ("<chunk-kernel>",),
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            ) from exc
        demands = []
        for i, seed in enumerate(seeds):
            try:
                demands.append(self._demand_factory(self._graph, seed))
            except Exception as exc:
                raise TrialExecutionError(
                    keys[i],
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                ) from exc

        flat = None
        if self._pair_kernel is not None:
            flat = self._route_batched(keys, demands, draw)
        if flat is None:
            flat = self._route_sequential(keys, demands, draw)

        records = []
        cursor = 0
        for i, (trial, seed) in enumerate(tails):
            k = demands[i].commodities
            traffic = summarize_traffic(self._graph, flat[cursor : cursor + k])
            cursor += k
            records.append(
                TrialRecord(
                    trial=trial,
                    seed=seed,
                    connected=traffic.delivered == traffic.commodities,
                    result=None,
                    traffic=traffic,
                )
            )
        return records

    def _route_batched(self, keys, demands, draw):
        """Route every (trial, commodity) row in lockstep, or ``None``.

        ``None`` means the batch cannot be replayed (a pair without a
        kernel-side representation) and the sequential loop should run
        instead — behaviour, not speed, is the invariant.
        """
        code = self._index.code
        rowtrial: list[int] = []
        rowsrc: list[int] = []
        rowtgt: list[int] = []
        for i, matrix in enumerate(demands):
            for source, target in matrix.pairs:
                sc = code.get(source)
                tc = code.get(target)
                if sc is None or tc is None:
                    return None
                rowtrial.append(i)
                rowsrc.append(sc)
                rowtgt.append(tc)
        try:
            masks = draw.edge_masks()
            trial_of_row = np.asarray(rowtrial, dtype=np.int64)
            src = np.asarray(rowsrc, dtype=np.int64)
            tgt = np.asarray(rowtgt, dtype=np.int64)
            out = []
            # Expand trial masks to commodity rows one engine-sized
            # block at a time, so peak memory matches the fixed-pair
            # engines' own blocking.
            block = _block_rows(
                self._index.num_vertices, self._index.num_edges
            )
            for lo in range(0, src.shape[0], block):
                hi = min(lo + block, src.shape[0])
                out.extend(
                    self._pair_kernel.route_pairs(
                        masks[trial_of_row[lo:hi]],
                        src[lo:hi],
                        tgt[lo:hi],
                    )
                )
            return out
        except PairRoutingUnsupported:
            return None
        except TrialExecutionError:
            raise
        except Exception as exc:
            raise TrialExecutionError(
                keys[0] if keys else ("<chunk-kernel>",),
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            ) from exc

    def _route_sequential(self, keys, demands, draw):
        """The exact sequential-commodity loop over mask-backed models."""
        flat = []
        for i, matrix in enumerate(demands):
            try:
                flat.extend(
                    self._router.route_demands(
                        draw.model(i), matrix, budget=self._budget
                    )
                )
            except TrialExecutionError:
                raise
            except Exception as exc:
                raise TrialExecutionError(
                    keys[i],
                    f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                ) from exc
        return flat


def compile_traffic_chunk(workload: Workload):
    """Compile a ``run_traffic_trial`` workload to a chunk runner.

    Mirrors :func:`~repro.kernels.complexity.compile_run_trial_chunk`:
    ``None`` (per-trial fallback) whenever an ingredient lacks a
    vectorized counterpart or the fallback would reject the arguments.
    A registered model kernel with an unregistered router still
    compiles — the draw vectorizes and routing keeps the sequential
    commodity loop (``stages()`` reports the split).
    """
    from repro.core.complexity import _default_factory
    from repro.core.traffic import run_traffic_trial

    if workload.fn is not run_traffic_trial:
        return None
    if len(workload.args) != 4:
        return None
    if not set(workload.kwargs) <= {"budget", "model_factory"}:
        return None
    graph, p, router, demand_factory = workload.args
    if not isinstance(graph, Graph):
        return None
    if not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
        return None
    if not callable(demand_factory):
        return None
    budget = workload.kwargs.get("budget")
    factory = workload.kwargs.get("model_factory") or _default_factory(graph)
    try:
        compiler = _MODEL_KERNELS.get(factory)
    except TypeError:
        # Unhashable factory — cannot be registered, fall back.
        compiler = None
    if compiler is None:
        return None
    index = build_edge_index(graph)
    if index is None:
        return None
    model_kernel = compiler(graph, index, p)
    if model_kernel is None:
        return None
    pair_kernel = pair_router_kernel_for(router, index, budget)
    return _TrafficChunk(
        graph,
        index,
        model_kernel,
        router,
        pair_kernel,
        demand_factory,
        budget,
    )
