"""Chunk-wide reachability by batched frontier expansion.

The conditioning step of a routing trial asks one bit — is the target
in the source's open cluster?  :func:`batched_connected` answers it for
a whole chunk at once: trials are rows of a boolean reach matrix, and
one sweep expands *every* trial's frontier with two array gathers (the
padded incidence arrays of the :class:`~repro.kernels.topology.
EdgeIndex` turn "neighbour reached through an open edge" into indexed
reads).  The answer equals :func:`repro.percolation.cluster.connected`
per row by construction — reachability is order-independent, so it
does not matter that the per-trial BFS visits vertices in a different
sequence.

Memory is bounded by processing trials in blocks: each sweep keeps a
``(block, vertices, max_degree)`` boolean workspace, capped at roughly
:data:`BLOCK_BYTES`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.topology import EdgeIndex

__all__ = ["BLOCK_BYTES", "batched_connected", "block_rows"]

#: Soft cap on the per-sweep boolean workspace, in bytes.
BLOCK_BYTES = 64 * 1024 * 1024


def block_rows(num_vertices: int, width: int) -> int:
    """Trials per block for a ``(block, vertices, width)`` workspace.

    Shared by every chunk-wide sweep that keeps per-trial state of that
    shape — the eager BFS below, the lazy site-coin BFS in
    :mod:`repro.kernels.percolation` — so they all honour the same
    :data:`BLOCK_BYTES` soft cap.
    """
    per_row = max(1, num_vertices * width)
    return max(1, BLOCK_BYTES // per_row)


def batched_connected(
    index: EdgeIndex,
    masks: np.ndarray,
    source_code: int,
    target_code: int,
) -> np.ndarray:
    """Return ``connected(source, target)`` for every trial row.

    ``masks`` is the ``(trials, edges)`` open-edge matrix of the chunk.
    Equivalent to running the per-trial cluster BFS on each row.
    """
    trials = masks.shape[0]
    out = np.zeros(trials, dtype=bool)
    if source_code == target_code:
        out[:] = True
        return out
    inc_nbr, inc_eid, inc_valid = index.incidence()
    num_vertices, width = inc_nbr.shape
    block = block_rows(num_vertices, width)
    for lo in range(0, trials, block):
        hi = min(lo + block, trials)
        # Which incidence slots are open, per trial in the block.
        inc_open = masks[lo:hi, inc_eid] & inc_valid
        reached = np.zeros((hi - lo, num_vertices), dtype=bool)
        reached[:, source_code] = True
        rows = np.arange(lo, hi, dtype=np.int64)
        while rows.size:
            # A vertex joins when any incident open edge leads to a
            # reached neighbour — one gather + reduce for all trials.
            grown = (inc_open & reached[:, inc_nbr]).any(axis=2)
            grown |= reached
            hit = grown[:, target_code]
            # A row is settled once its target is reached or its
            # cluster stopped growing; its verdict is final either way
            # (reachability is monotone in the sweep count).
            active = ~hit & (grown != reached).any(axis=1)
            settled = ~active
            if settled.any():
                out[rows[settled]] = hit[settled]
                if not active.any():
                    break
                # Drop settled rows from the workspace once they are
                # the majority — sweeps then shrink with the slowest
                # clusters instead of paying for finished trials, and
                # the halving rule bounds total copy cost at ~2x one
                # workspace.
                if int(active.sum()) <= rows.size // 2:
                    reached = grown[active]
                    inc_open = inc_open[active]
                    rows = rows[active]
                    continue
            reached = grown
    return out
