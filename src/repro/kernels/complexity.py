"""The vectorized chunk kernel for :func:`repro.core.complexity.run_trial`.

``complexity_specs`` freezes a sweep point's context (graph, p, router,
pair, factory, conditioning) into one workload whose specs differ only
in their ``(trial, seed)`` tail.  :func:`compile_run_trial_chunk`
inspects that context once and — when every ingredient has a vectorized
counterpart — returns a chunk runner that executes *all* tails in one
pass, stage by stage:

1. **topology** compiles to an :class:`~repro.kernels.topology.
   EdgeIndex` (implicit graphs arithmetically, other enumerable graphs
   via one ``edges()`` walk, amortised over the workload's lifetime);
2. **draw** — the percolation factory's *model kernel* draws every
   trial's mask as one matrix (or a lazily-demanded one), bit-identical
   per row to the per-trial model;
3. **conditioning** runs as chunk-wide batched BFS
   (:func:`~repro.kernels.bfs.batched_connected`, or the draw's own
   lazy variant — same verdicts, no per-trial Python BFS);
4. **routing** runs through the router's registered *routing kernel*
   (:mod:`repro.kernels.routing`): a lockstep frontier-array replay of
   the exact per-trial probe sequence, same counts, same paths.
   Unregistered routers keep the per-trial loop against cheap
   mask-backed models — behaviour, not speed, is the invariant.

The result is the same list of :class:`~repro.core.complexity.
TrialRecord` objects ``spec.execute()`` would produce, field for field.
Unsupported ingredients (a lazy :class:`~repro.percolation.models.
HashPercolation` factory, an unenumerable graph, an unregistered
factory) make the compiler return ``None`` and the runners fall back to
the per-trial loop.  The compiled runner reports its per-stage verdicts
through ``stages()`` — what ``repro info``'s kernel audit prints.

Model kernels are registered per factory *callable* with
:func:`register_model_kernel`; :class:`~repro.percolation.models.
TablePercolation` ships registered, site-percolation factories can opt
in through :func:`site_model_kernel` (experiment E14 does), and
node-fault factories — the same ``"site"`` coin stream viewed as
incident-edge kill — through :func:`node_model_kernel` (E15's node arm
does).
"""

from __future__ import annotations

import traceback
from collections.abc import Callable, Sequence

import numpy as np

from repro.graphs.base import Graph, Vertex
from repro.kernels.bfs import batched_connected
from repro.kernels.percolation import (
    LazySiteDraw,
    MaskEdgePercolation,
    table_edge_masks,
)
from repro.kernels.routing import router_kernel_for
from repro.kernels.topology import EdgeIndex, build_edge_index
from repro.percolation.models import TablePercolation
from repro.runtime.trial import TrialExecutionError
from repro.runtime.workload import Workload

__all__ = [
    "compile_run_trial_chunk",
    "node_model_kernel",
    "register_model_kernel",
    "site_model_kernel",
    "table_model_kernel",
]

#: Percolation factory callable -> model-kernel compiler.
_MODEL_KERNELS: dict = {}


def register_model_kernel(factory: Callable, compiler: Callable) -> None:
    """Register the vectorized counterpart of a percolation factory.

    ``factory`` is the exact callable workloads carry as
    ``model_factory`` (a class like ``TablePercolation``, or a
    module-level function).  ``compiler(graph, index, p)`` must return
    an object with two methods — ``draw(seeds) ->`` chunk draw with
    ``edge_masks()`` (a ``(trials, edges)`` open matrix for
    conditioning) and ``model(i)`` (a
    :class:`~repro.percolation.models.PercolationModel`
    response-identical to ``factory(graph, p, seeds[i])``) — or ``None``
    to decline this workload.  A draw may additionally expose
    ``connected(source_code, target_code)`` (lazy conditioning) and
    ``edge_masks_for(rows)`` (mask rows for the routed trials only);
    the chunk runner prefers them when present.  Registration is per
    process; do it at import time of the module defining the factory,
    so worker processes registering by unpickling the workload see it
    too.
    """
    _MODEL_KERNELS[factory] = compiler


class _TableDraw:
    def __init__(self, index: EdgeIndex, p: float, masks: np.ndarray):
        self._index = index
        self._p = p
        self._masks = masks

    def edge_masks(self) -> np.ndarray:
        return self._masks

    def model(self, i: int) -> MaskEdgePercolation:
        return MaskEdgePercolation(self._index, self._p, self._masks[i])


class _TableModelKernel:
    def __init__(self, index: EdgeIndex, p: float):
        self._index = index
        self._p = p

    def draw(self, seeds: Sequence[int]) -> _TableDraw:
        masks = table_edge_masks(self._p, seeds, self._index.num_edges)
        return _TableDraw(self._index, self._p, masks)


def table_model_kernel(graph: Graph, index: EdgeIndex, p: float):
    """Model kernel replaying ``TablePercolation`` row by row."""
    return _TableModelKernel(index, p)


class _SiteModelKernel:
    def __init__(
        self,
        index: EdgeIndex,
        p: float,
        pinned_codes: tuple,
        node_view: bool = False,
    ):
        self._index = index
        self._p = p
        self._pinned = pinned_codes
        self._node_view = node_view

    def draw(self, seeds: Sequence[int]) -> LazySiteDraw:
        return LazySiteDraw(
            self._index,
            self._p,
            seeds,
            self._pinned,
            node_view=self._node_view,
        )


def _site_compiler(pinned, node_view: bool):
    def compiler(graph: Graph, index: EdgeIndex, p: float):
        pinned_verts = () if pinned is None else tuple(pinned(graph))
        codes = []
        for v in pinned_verts:
            code = index.code.get(v)
            if code is None:
                return None  # pinned vertex outside the graph
            codes.append(code)
        return _SiteModelKernel(index, p, tuple(codes), node_view=node_view)

    return compiler


def site_model_kernel(
    pinned: Callable[[Graph], Sequence[Vertex]] | None = None,
):
    """Build a model-kernel compiler for a site-percolation factory.

    ``pinned`` maps the graph to the vertices the factory exempts from
    failure (``None`` = nothing pinned); it must produce the same set
    the factory passes to :class:`~repro.percolation.site.
    SitePercolation`, or the parity gate fails.
    """
    return _site_compiler(pinned, node_view=False)


def node_model_kernel(
    pinned: Callable[[Graph], Sequence[Vertex]] | None = None,
):
    """Build a model-kernel compiler for a node-fault factory.

    :class:`~repro.percolation.faults.NodeFaultPercolation` flips the
    *same* ``"site"`` BLAKE2b coin stream as ``SitePercolation`` — a
    vertex survives iff pinned or its coin lands under ``p`` — and an
    edge is open iff both endpoints survive.  That is exactly the site
    up-mask viewed as incident-edge kill, so the kernel reuses the lazy
    site draw and hands per-trial rows out as edge masks.  ``pinned``
    must return the vertices the factory pins (E15 pins the probe
    pair).
    """
    return _site_compiler(pinned, node_view=True)


register_model_kernel(TablePercolation, table_model_kernel)


class _RunTrialChunk:
    """A compiled chunk runner for one ``run_trial`` workload."""

    def __init__(
        self,
        index: EdgeIndex,
        model_kernel,
        router,
        router_kernel,
        source: Vertex,
        target: Vertex,
        source_code: int,
        target_code: int,
        budget: int | None,
        conditioning: str,
    ) -> None:
        self._index = index
        self._model_kernel = model_kernel
        self._router = router
        self._router_kernel = router_kernel
        self._source = source
        self._target = target
        self._source_code = source_code
        self._target_code = target_code
        self._budget = budget
        self._conditioning = conditioning

    def stages(self) -> dict[str, str]:
        """Per-stage execution verdicts for the kernel audit.

        ``conditioning`` under ``"router"``/``"none"`` *is* the routing
        attempt, so it reports whatever the routing stage does.
        """
        routing = (
            "kernel" if self._router_kernel is not None else "per-trial"
        )
        conditioning = (
            "kernel" if self._conditioning == "exact" else routing
        )
        return {
            "draw": "kernel",
            "conditioning": conditioning,
            "routing": routing,
        }

    def __call__(
        self, keys: Sequence[tuple], tails: Sequence[tuple]
    ) -> list:
        from repro.core.complexity import TrialRecord

        seeds = [seed for _, seed in tails]
        try:
            draw = self._model_kernel.draw(seeds)
            conn = None
            if self._conditioning == "exact":
                lazy = getattr(draw, "connected", None)
                if lazy is not None:
                    conn = lazy(self._source_code, self._target_code)
                else:
                    conn = batched_connected(
                        self._index,
                        draw.edge_masks(),
                        self._source_code,
                        self._target_code,
                    )
        except TrialExecutionError:
            raise
        except Exception as exc:
            raise TrialExecutionError(
                keys[0] if keys else ("<chunk-kernel>",),
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            ) from exc

        # Under "exact" conditioning only connected trials route; the
        # other modes route everything and read `connected` off the
        # attempt ("router" mode routes without a budget).
        if conn is not None:
            route_rows = [i for i in range(len(tails)) if conn[i]]
        else:
            route_rows = list(range(len(tails)))
        budget = None if self._conditioning == "router" else self._budget
        results: list = [None] * len(tails)
        if self._router_kernel is not None:
            if route_rows:
                try:
                    masks = self._row_masks(draw, route_rows)
                    routed = self._router_kernel.route_rows(masks)
                except TrialExecutionError:
                    raise
                except Exception as exc:
                    raise TrialExecutionError(
                        keys[route_rows[0]],
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}",
                    ) from exc
                for i, result in zip(route_rows, routed):
                    results[i] = result
        else:
            route = self._router.route
            for i in route_rows:
                try:
                    results[i] = route(
                        draw.model(i),
                        self._source,
                        self._target,
                        budget=budget,
                    )
                except TrialExecutionError:
                    raise
                except Exception as exc:
                    raise TrialExecutionError(
                        keys[i],
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}",
                    ) from exc
        records = []
        for i, (trial, seed) in enumerate(tails):
            result = results[i]
            if conn is not None:
                is_conn = bool(conn[i])
            else:
                is_conn = result.success
            records.append(
                TrialRecord(
                    trial=trial, seed=seed, connected=is_conn, result=result
                )
            )
        return records

    @staticmethod
    def _row_masks(draw, rows: list[int]) -> np.ndarray:
        rows_fn = getattr(draw, "edge_masks_for", None)
        if rows_fn is not None:
            return rows_fn(rows)
        return draw.edge_masks()[rows]


def compile_run_trial_chunk(workload: Workload):
    """Compile a ``run_trial`` workload to a chunk runner, or ``None``.

    ``None`` — the per-trial fallback — whenever any ingredient lacks a
    vectorized counterpart; anything the fallback would *reject* (bad
    ``p``, unknown conditioning) is also declined, so the error
    surfaces through the unchanged per-trial code path.  A registered
    model kernel with an unregistered *router* still compiles: draw and
    conditioning vectorize, routing takes the per-trial loop (the
    runner's ``stages()`` reports the split).
    """
    from repro.core.complexity import _default_factory, run_trial

    if workload.fn is not run_trial:
        return None
    if len(workload.args) != 5:
        return None
    allowed = {"budget", "model_factory", "conditioning"}
    if not set(workload.kwargs) <= allowed:
        return None
    graph, p, router, source, target = workload.args
    if not isinstance(graph, Graph):
        return None
    if not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
        return None
    budget = workload.kwargs.get("budget")
    conditioning = workload.kwargs.get("conditioning", "exact")
    if conditioning not in ("exact", "router", "none"):
        return None
    factory = workload.kwargs.get("model_factory") or _default_factory(graph)
    try:
        compiler = _MODEL_KERNELS.get(factory)
    except TypeError:
        # Unhashable factory (e.g. an unfrozen dataclass instance) —
        # it can't be registered, so it can't have a kernel: fall back.
        compiler = None
    if compiler is None:
        return None
    index = build_edge_index(graph)
    if index is None:
        return None
    source_code = index.code.get(source)
    target_code = index.code.get(target)
    if source_code is None or target_code is None:
        return None
    model_kernel = compiler(graph, index, p)
    if model_kernel is None:
        return None
    # "router" conditioning routes with no budget (run_trial's rule);
    # the effective budget is fixed per workload, so the routing kernel
    # compiles once against it.
    route_budget = None if conditioning == "router" else budget
    router_kernel = router_kernel_for(
        router, index, source_code, target_code, route_budget
    )
    return _RunTrialChunk(
        index,
        model_kernel,
        router,
        router_kernel,
        source,
        target,
        source_code,
        target_code,
        budget,
        conditioning,
    )
