"""The vectorized chunk kernel for :func:`repro.core.complexity.run_trial`.

``complexity_specs`` freezes a sweep point's context (graph, p, router,
pair, factory, conditioning) into one workload whose specs differ only
in their ``(trial, seed)`` tail.  :func:`compile_run_trial_chunk`
inspects that context once and — when every ingredient has a vectorized
counterpart — returns a chunk runner that executes *all* tails in one
pass:

1. the topology compiles to an :class:`~repro.kernels.topology.
   EdgeIndex` (implicit graphs arithmetically, other enumerable graphs
   via one ``edges()`` walk, amortised over the workload's lifetime);
2. the percolation factory's *model kernel* draws every trial's mask as
   one matrix, bit-identical per row to the per-trial model;
3. conditioning runs as chunk-wide batched BFS
   (:func:`~repro.kernels.bfs.batched_connected` — same verdicts, no
   per-trial Python BFS);
4. routing stays the per-trial router — it is probe-order dependent and
   must stay *exactly* the measured algorithm — but runs against a
   cheap mask-backed model instead of rebuilding adjacency per trial.

The result is the same list of :class:`~repro.core.complexity.
TrialRecord` objects ``spec.execute()`` would produce, field for field.
Unsupported ingredients (a lazy :class:`~repro.percolation.models.
HashPercolation` factory, an unenumerable graph, an unregistered
factory) make the compiler return ``None`` and the runners fall back to
the per-trial loop — behaviour, not speed, is the invariant.

Model kernels are registered per factory *callable* with
:func:`register_model_kernel`; :class:`~repro.percolation.models.
TablePercolation` ships registered, and site-percolation factories can
opt in through :func:`site_model_kernel` (experiment E14 does).
"""

from __future__ import annotations

import traceback
from collections.abc import Callable, Sequence

import numpy as np

from repro.graphs.base import Graph, Vertex
from repro.kernels.bfs import batched_connected
from repro.kernels.percolation import (
    MaskEdgePercolation,
    MaskSitePercolation,
    site_up_masks,
    table_edge_masks,
)
from repro.kernels.topology import EdgeIndex, build_edge_index
from repro.percolation.models import TablePercolation
from repro.runtime.trial import TrialExecutionError
from repro.runtime.workload import Workload

__all__ = [
    "compile_run_trial_chunk",
    "register_model_kernel",
    "site_model_kernel",
    "table_model_kernel",
]

#: Percolation factory callable -> model-kernel compiler.
_MODEL_KERNELS: dict = {}


def register_model_kernel(factory: Callable, compiler: Callable) -> None:
    """Register the vectorized counterpart of a percolation factory.

    ``factory`` is the exact callable workloads carry as
    ``model_factory`` (a class like ``TablePercolation``, or a
    module-level function).  ``compiler(graph, index, p)`` must return
    an object with two methods — ``draw(seeds) ->`` chunk draw with
    ``edge_masks()`` (a ``(trials, edges)`` open matrix for
    conditioning) and ``model(i)`` (a
    :class:`~repro.percolation.models.PercolationModel`
    response-identical to ``factory(graph, p, seeds[i])``) — or ``None``
    to decline this workload.  Registration is per process; do it at
    import time of the module defining the factory, so worker processes
    registering by unpickling the workload see it too.
    """
    _MODEL_KERNELS[factory] = compiler


class _TableDraw:
    def __init__(self, index: EdgeIndex, p: float, masks: np.ndarray):
        self._index = index
        self._p = p
        self._masks = masks

    def edge_masks(self) -> np.ndarray:
        return self._masks

    def model(self, i: int) -> MaskEdgePercolation:
        return MaskEdgePercolation(self._index, self._p, self._masks[i])


class _TableModelKernel:
    def __init__(self, index: EdgeIndex, p: float):
        self._index = index
        self._p = p

    def draw(self, seeds: Sequence[int]) -> _TableDraw:
        masks = table_edge_masks(self._p, seeds, self._index.num_edges)
        return _TableDraw(self._index, self._p, masks)


def table_model_kernel(graph: Graph, index: EdgeIndex, p: float):
    """Model kernel replaying ``TablePercolation`` row by row."""
    return _TableModelKernel(index, p)


class _SiteDraw:
    def __init__(self, index: EdgeIndex, p: float, up: np.ndarray):
        self._index = index
        self._p = p
        self._up = up

    def edge_masks(self) -> np.ndarray:
        # An edge is traversable iff both endpoints are up — the
        # SitePercolation.is_open rule, lifted to the whole chunk.
        return self._up[:, self._index.edge_u] & self._up[:, self._index.edge_v]

    def model(self, i: int) -> MaskSitePercolation:
        return MaskSitePercolation(self._index, self._p, self._up[i])


class _SiteModelKernel:
    def __init__(self, index: EdgeIndex, p: float, pinned_codes: tuple):
        self._index = index
        self._p = p
        self._pinned = pinned_codes

    def draw(self, seeds: Sequence[int]) -> _SiteDraw:
        up = site_up_masks(self._p, seeds, self._index.verts, self._pinned)
        return _SiteDraw(self._index, self._p, up)


def site_model_kernel(
    pinned: Callable[[Graph], Sequence[Vertex]] | None = None,
):
    """Build a model-kernel compiler for a site-percolation factory.

    ``pinned`` maps the graph to the vertices the factory exempts from
    failure (``None`` = nothing pinned); it must produce the same set
    the factory passes to :class:`~repro.percolation.site.
    SitePercolation`, or the parity gate fails.
    """

    def compiler(graph: Graph, index: EdgeIndex, p: float):
        pinned_verts = () if pinned is None else tuple(pinned(graph))
        codes = []
        for v in pinned_verts:
            code = index.code.get(v)
            if code is None:
                return None  # pinned vertex outside the graph
            codes.append(code)
        return _SiteModelKernel(index, p, tuple(codes))

    return compiler


register_model_kernel(TablePercolation, table_model_kernel)


class _RunTrialChunk:
    """A compiled chunk runner for one ``run_trial`` workload."""

    def __init__(
        self,
        index: EdgeIndex,
        model_kernel,
        router,
        source: Vertex,
        target: Vertex,
        source_code: int,
        target_code: int,
        budget: int | None,
        conditioning: str,
    ) -> None:
        self._index = index
        self._model_kernel = model_kernel
        self._router = router
        self._source = source
        self._target = target
        self._source_code = source_code
        self._target_code = target_code
        self._budget = budget
        self._conditioning = conditioning

    def __call__(
        self, keys: Sequence[tuple], tails: Sequence[tuple]
    ) -> list:
        from repro.core.complexity import TrialRecord

        seeds = [seed for _, seed in tails]
        try:
            draw = self._model_kernel.draw(seeds)
            conn = None
            if self._conditioning == "exact":
                conn = batched_connected(
                    self._index,
                    draw.edge_masks(),
                    self._source_code,
                    self._target_code,
                )
        except TrialExecutionError:
            raise
        except Exception as exc:
            raise TrialExecutionError(
                keys[0] if keys else ("<chunk-kernel>",),
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            ) from exc
        records = []
        route = self._router.route
        for i, (trial, seed) in enumerate(tails):
            try:
                if conn is not None:  # "exact"
                    is_conn = bool(conn[i])
                    result = None
                    if is_conn:
                        result = route(
                            draw.model(i),
                            self._source,
                            self._target,
                            budget=self._budget,
                        )
                elif self._conditioning == "router":
                    result = route(
                        draw.model(i), self._source, self._target, budget=None
                    )
                    is_conn = result.success
                else:  # "none"
                    result = route(
                        draw.model(i),
                        self._source,
                        self._target,
                        budget=self._budget,
                    )
                    is_conn = result.success
            except TrialExecutionError:
                raise
            except Exception as exc:
                raise TrialExecutionError(
                    keys[i],
                    f"{type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}",
                ) from exc
            records.append(
                TrialRecord(
                    trial=trial, seed=seed, connected=is_conn, result=result
                )
            )
        return records


def compile_run_trial_chunk(workload: Workload):
    """Compile a ``run_trial`` workload to a chunk runner, or ``None``.

    ``None`` — the per-trial fallback — whenever any ingredient lacks a
    vectorized counterpart; anything the fallback would *reject* (bad
    ``p``, unknown conditioning) is also declined, so the error
    surfaces through the unchanged per-trial code path.
    """
    from repro.core.complexity import _default_factory, run_trial

    if workload.fn is not run_trial:
        return None
    if len(workload.args) != 5:
        return None
    allowed = {"budget", "model_factory", "conditioning"}
    if not set(workload.kwargs) <= allowed:
        return None
    graph, p, router, source, target = workload.args
    if not isinstance(graph, Graph):
        return None
    if not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
        return None
    budget = workload.kwargs.get("budget")
    conditioning = workload.kwargs.get("conditioning", "exact")
    if conditioning not in ("exact", "router", "none"):
        return None
    factory = workload.kwargs.get("model_factory") or _default_factory(graph)
    try:
        compiler = _MODEL_KERNELS.get(factory)
    except TypeError:
        # Unhashable factory (e.g. an unfrozen dataclass instance) —
        # it can't be registered, so it can't have a kernel: fall back.
        compiler = None
    if compiler is None:
        return None
    index = build_edge_index(graph)
    if index is None:
        return None
    source_code = index.code.get(source)
    target_code = index.code.get(target)
    if source_code is None or target_code is None:
        return None
    model_kernel = compiler(graph, index, p)
    if model_kernel is None:
        return None
    return _RunTrialChunk(
        index,
        model_kernel,
        router,
        source,
        target,
        source_code,
        target_code,
        budget,
        conditioning,
    )
