"""Vectorized chunk kernels: whole-chunk trial execution with NumPy.

The runtime's schedulable unit is a single trial, but the *executable*
unit on a worker is a chunk of consecutive specs sharing one workload.
This package supplies batch kernels that execute such a chunk in one
call — i.i.d. percolation masks drawn as one seeded bit-matrix, the
conditioning BFS as chunk-wide frontier expansion over implicit
topologies compiled to index arithmetic — while preserving the
per-trial seed derivation, so every record is **bit-identical** to what
``spec.execute()`` produces.  Registration happens on import: pulling
this package in wires the ``run_trial`` compiler into
:mod:`repro.runtime.chunkexec` (which imports it lazily on the first
chunk it sees).

Layout
------

:mod:`~repro.kernels.topology`
    :class:`EdgeIndex` — a graph as flat edge/incidence arrays, edges
    in exact ``graph.edges()`` order (the mask-parity contract), built
    arithmetically for Hypercube/Mesh/Torus/DeBruijn.
:mod:`~repro.kernels.percolation`
    Batched seeded mask draws + mask-backed ``PercolationModel``\\ s
    that answer exactly like the per-trial models they replace.
:mod:`~repro.kernels.bfs`
    Chunk-wide reachability (the conditioning step) by batched
    frontier expansion.
:mod:`~repro.kernels.routing`
    Lockstep frontier-array routing kernels replaying the complete
    -information routers probe for probe, plus the router-kernel
    registry router types opt into.
:mod:`~repro.kernels.complexity`
    The ``run_trial`` chunk compiler tying the above together, plus
    the model-kernel registry percolation factories opt into.
"""

from repro.kernels.bfs import batched_connected
from repro.kernels.complexity import (
    compile_run_trial_chunk,
    node_model_kernel,
    register_model_kernel,
    site_model_kernel,
    table_model_kernel,
)
from repro.kernels.percolation import (
    LazySiteDraw,
    MaskEdgePercolation,
    MaskSitePercolation,
    site_up_masks,
    table_edge_masks,
)
from repro.kernels.routing import (
    PairRoutingUnsupported,
    pair_router_kernel_for,
    register_router_kernel,
    register_router_pair_kernel,
    router_kernel_for,
    routing_incidence,
)
from repro.kernels.topology import EdgeIndex, build_edge_index
from repro.kernels.traffic import compile_traffic_chunk

__all__ = [
    "EdgeIndex",
    "LazySiteDraw",
    "MaskEdgePercolation",
    "MaskSitePercolation",
    "PairRoutingUnsupported",
    "batched_connected",
    "build_edge_index",
    "compile_run_trial_chunk",
    "compile_traffic_chunk",
    "node_model_kernel",
    "pair_router_kernel_for",
    "register_model_kernel",
    "register_router_kernel",
    "register_router_pair_kernel",
    "router_kernel_for",
    "routing_incidence",
    "site_model_kernel",
    "site_up_masks",
    "table_edge_masks",
    "table_model_kernel",
]


def _register_builtin_kernels() -> None:
    """Wire the shipped compilers into the runtime seam (idempotent)."""
    from repro.core.complexity import run_trial
    from repro.core.traffic import run_traffic_trial
    from repro.runtime.chunkexec import register_chunk_kernel

    register_chunk_kernel(run_trial, compile_run_trial_chunk)
    register_chunk_kernel(run_traffic_trial, compile_traffic_chunk)


_register_builtin_kernels()
