"""Implicit topologies as index arrays.

The vectorized kernels never walk object graphs: a topology is compiled
once per workload into an :class:`EdgeIndex` — flat integer arrays in
which vertex ``i`` is the ``i``-th element of ``graph.vertices()`` and
edge ``e`` is the ``e``-th element of ``graph.edges()``.  Everything
downstream (mask drawing, frontier expansion, the mask-backed
percolation models) is array indexing on those codes.

**Order parity is the contract.**  ``TablePercolation`` draws one
uniform per edge *in enumeration order*, so the batched mask kernel
reproduces its draws bit-for-bit only if ``edge_u``/``edge_v`` list the
edges in exactly the order ``graph.edges()`` yields them.  The builders
for the paper's implicit topologies (:class:`~repro.graphs.hypercube.
Hypercube`, :class:`~repro.graphs.mesh.Mesh`, :class:`~repro.graphs.
mesh.Torus`, :class:`~repro.graphs.debruijn.DeBruijn`) derive that
order arithmetically — no per-edge Python — and
``tests/kernels/test_topology.py`` pins each one against the real
enumeration.  Every other enumerable graph gets the generic builder,
which simply walks ``graph.edges()`` once (same cost as a single
``TablePercolation`` construction, paid once per workload instead of
once per trial).

>>> from repro.graphs.hypercube import Hypercube
>>> index = build_edge_index(Hypercube(3))
>>> index.num_edges
12
>>> (index.verts[index.edge_u[0]], index.verts[index.edge_v[0]])
(0, 1)
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.graphs.debruijn import DeBruijn
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh, Torus

__all__ = ["EdgeIndex", "build_edge_index"]

#: Refuse to materialise indexes beyond this many vertices — the same
#: bound ``repro.core.complexity._default_factory`` uses to switch from
#: ``TablePercolation`` to lazy hashing.
MAX_INDEX_VERTICES = 2_000_000


class EdgeIndex:
    """A graph compiled to integer arrays, edges in ``edges()`` order.

    ``edge_u``/``edge_v`` hold the canonical endpoints (``u < v``) of
    edge ``e`` as vertex codes — positions in ``graph.vertices()``
    order.  Vertex objects, the code map, the edge-id map and the
    padded incidence arrays are derived lazily, so workloads that never
    route (e.g. every trial disconnected) never pay for the lookup
    dicts.
    """

    def __init__(
        self, graph: Graph, edge_u: np.ndarray, edge_v: np.ndarray
    ) -> None:
        self.graph = graph
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.num_vertices = int(graph.num_vertices())
        self.num_edges = int(len(edge_u))
        self._verts: list | None = None
        self._code: dict | None = None
        self._eid: dict | None = None
        self._incidence: tuple | None = None

    @property
    def verts(self) -> list:
        """Vertex objects, position = code (``graph.vertices()`` order)."""
        if self._verts is None:
            self._verts = list(self.graph.vertices())
        return self._verts

    @property
    def code(self) -> dict:
        """Vertex object -> vertex code."""
        if self._code is None:
            self._code = {v: i for i, v in enumerate(self.verts)}
        return self._code

    @property
    def eid(self) -> dict:
        """Canonical edge key -> edge id (``graph.edges()`` order)."""
        if self._eid is None:
            verts = self.verts
            self._eid = {
                (verts[u], verts[v]): e
                for e, (u, v) in enumerate(
                    zip(self.edge_u.tolist(), self.edge_v.tolist())
                )
            }
        return self._eid

    def incidence(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded incidence arrays ``(inc_nbr, inc_eid, inc_valid)``.

        Row ``v`` lists the codes of ``v``'s neighbours and the ids of
        the connecting edges, padded to the maximum degree;
        ``inc_valid`` masks the padding.  Built vectorised from the
        edge arrays (no Python per edge) and cached.
        """
        if self._incidence is None:
            self._incidence = _build_incidence(
                self.edge_u, self.edge_v, self.num_vertices
            )
        return self._incidence


def _build_incidence(
    edge_u: np.ndarray, edge_v: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    num_edges = len(edge_u)
    if num_edges == 0:
        shape = (num_vertices, 1)
        return (
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=bool),
        )
    ends = np.concatenate([edge_u, edge_v])
    others = np.concatenate([edge_v, edge_u])
    eids = np.tile(np.arange(num_edges, dtype=np.int64), 2)
    order = np.argsort(ends, kind="stable")
    ends_sorted = ends[order]
    degree = np.bincount(ends, minlength=num_vertices)
    width = int(degree.max())
    starts = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degree, out=starts[1:])
    slot = np.arange(2 * num_edges, dtype=np.int64) - starts[ends_sorted]
    inc_nbr = np.zeros((num_vertices, width), dtype=np.int64)
    inc_eid = np.zeros((num_vertices, width), dtype=np.int64)
    inc_valid = np.zeros((num_vertices, width), dtype=bool)
    inc_nbr[ends_sorted, slot] = others[order]
    inc_eid[ends_sorted, slot] = eids[order]
    inc_valid[ends_sorted, slot] = True
    return inc_nbr, inc_eid, inc_valid


# -- per-topology edge arrays (exact ``graph.edges()`` order) -----------


def _hypercube_edges(graph: Hypercube) -> tuple[np.ndarray, np.ndarray]:
    # edges() iterates v ascending, flips bit i ascending, keeps the
    # orientation where v is the smaller endpoint — i.e. bit i unset.
    n = graph.n
    size = 1 << n
    v = np.repeat(np.arange(size, dtype=np.int64), n)
    bit = np.int64(1) << np.tile(np.arange(n, dtype=np.int64), size)
    keep = (v & bit) == 0
    return v[keep], (v | bit)[keep]


def _mesh_places(graph: Mesh) -> tuple[np.ndarray, np.ndarray]:
    # Vertex code = mixed-radix value of the coordinate tuple, which is
    # exactly the lexicographic position itertools.product yields.
    d, side = graph.d, graph.side
    place = side ** np.arange(d - 1, -1, -1, dtype=np.int64)
    codes = np.arange(side**d, dtype=np.int64)
    digits = (codes[:, None] // place[None, :]) % side
    return place, digits


def _mesh_edges(graph: Mesh) -> tuple[np.ndarray, np.ndarray]:
    # Per vertex, per coordinate i ascending: neighbors() yields the -1
    # neighbour (canonical key starts at *it*, so edges() skips it)
    # then the +1 neighbour (kept when in range).
    d, side = graph.d, graph.side
    place, digits = _mesh_places(graph)
    codes = np.arange(side**d, dtype=np.int64)
    keep = (digits < side - 1).ravel()
    u = np.repeat(codes, d)[keep]
    w = (codes[:, None] + place[None, :]).ravel()[keep]
    return u, w


def _torus_edges(graph: Torus) -> tuple[np.ndarray, np.ndarray]:
    # Per vertex, per coordinate i: neighbors() yields (v_i - 1) mod s
    # first, then (v_i + 1) mod s.  The -1 edge survives canonical
    # filtering only at digit 0 (the wraparound, where v is smaller);
    # the +1 edge survives below side - 1.  Slot order (wrap, then +1)
    # matches the neighbour order, so ravel reproduces edges().
    d, side = graph.d, graph.side
    place, digits = _mesh_places(graph)
    codes = np.arange(side**d, dtype=np.int64)
    wrap_w = codes[:, None] + (side - 1) * place[None, :]
    step_w = codes[:, None] + place[None, :]
    w = np.stack([wrap_w, step_w], axis=2).reshape(-1)
    keep = np.stack(
        [digits == 0, digits < side - 1], axis=2
    ).reshape(-1)
    u = np.repeat(codes, 2 * d)[keep]
    return u, w[keep]


def _debruijn_edges(graph: DeBruijn) -> tuple[np.ndarray, np.ndarray]:
    # neighbors() = the four shift candidates, deduped as a set, minus
    # self-loops, sorted; edges() keeps neighbours greater than v, in
    # that sorted order.  Sorting candidate rows makes duplicates
    # adjacent, so the dedupe is a shifted comparison.
    size = 1 << graph.n
    mask = size - 1
    half = size >> 1
    v = np.arange(size, dtype=np.int64)
    cand = np.stack(
        [
            (v << 1) & mask,
            ((v << 1) | 1) & mask,
            v >> 1,
            (v >> 1) | half,
        ],
        axis=1,
    )
    cand.sort(axis=1)
    dup = np.zeros_like(cand, dtype=bool)
    dup[:, 1:] = cand[:, 1:] == cand[:, :-1]
    keep = (~dup & (cand > v[:, None])).ravel()
    u = np.repeat(v, 4)[keep]
    return u, cand.ravel()[keep]


def _generic_edges(
    graph: Graph,
) -> tuple[np.ndarray, np.ndarray, list, dict]:
    # One Python walk of edges() — the cost of a single
    # TablePercolation construction, paid once per workload.
    verts = list(graph.vertices())
    code = {v: i for i, v in enumerate(verts)}
    pairs = [(code[a], code[b]) for a, b in graph.edges()]
    if pairs:
        arr = np.asarray(pairs, dtype=np.int64)
        edge_u, edge_v = arr[:, 0].copy(), arr[:, 1].copy()
    else:
        edge_u = edge_v = np.zeros(0, dtype=np.int64)
    return edge_u, edge_v, verts, code


def build_edge_index(graph: Graph) -> EdgeIndex | None:
    """Compile ``graph`` to an :class:`EdgeIndex`, or ``None``.

    The paper's implicit topologies compile arithmetically; any other
    enumerable graph falls back to one walk of ``edges()``.  ``None``
    means the graph is too large to materialise (the caller falls back
    to the per-trial path — which would not materialise it either).
    """
    try:
        too_big = graph.num_vertices() > MAX_INDEX_VERTICES
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        too_big = True
    if too_big:
        return None
    # Exact types only: a subclass may reorder neighbours (Torus does,
    # relative to Mesh), which silently breaks edge-order parity.
    builders = {
        Hypercube: _hypercube_edges,
        Mesh: _mesh_edges,
        Torus: _torus_edges,
        DeBruijn: _debruijn_edges,
    }
    builder = builders.get(type(graph))
    if builder is not None:
        edge_u, edge_v = builder(graph)
        return EdgeIndex(graph, edge_u, edge_v)
    edge_u, edge_v, verts, code = _generic_edges(graph)
    index = EdgeIndex(graph, edge_u, edge_v)
    index._verts = verts
    index._code = code
    return index
