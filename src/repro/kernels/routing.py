"""Vectorized routing: chunk-wide frontier-array router kernels.

Routing is the measured quantity of every trial — the probe sequence
*is* the experiment — so for years of this codebase it stayed per-trial
Python.  This module batches it without changing it: the complete
-information routers (:class:`~repro.routers.bfs.LocalBFSRouter`,
:class:`~repro.routers.bfs.BidirectionalBFSRouter` and the
:class:`~repro.routers.waypoint.WaypointRouter` family) are lockstep
simulations — every trial expands **one vertex per sweep**, all trials
at once, as array gathers over a neighbour-ordered incidence — so each
kernel replays the per-trial router *probe for probe*: same probe
counts, same discovered paths, same budget-exhaustion point, same
:class:`~repro.core.result.RoutingResult` fields.

The contract (enforced by ``tests/kernels/test_routing.py``):

* probes happen in ``graph.neighbors(x)`` order, from the exact vertex
  the per-trial router would expand next (FIFO order per queue; the
  bidirectional router expands the smaller frontier, ties to the
  source side; the waypoint router advances layer by layer with the
  depth cap checked *before* a layer is probed);
* ``queries`` counts distinct probed edges, incremented only for
  probes the per-trial router would have issued — a probe that would
  trip the budget raises *before* it is counted or answered, so a
  same-slot tie between discovery and budget exhaustion goes to the
  budget, exactly like :class:`~repro.core.probe.ProbeOracle`;
* success paths are loop-erased (:func:`~repro.core.result.
  erase_loops`) and failures carry the reason ``Router.route`` would
  attach (``BUDGET`` / ``EXHAUSTED`` / ``GAVE_UP`` by
  ``router.is_complete``).

Extension seam: :func:`register_router_kernel` mirrors
:func:`~repro.kernels.complexity.register_model_kernel` — register a
compiler per *exact* router type; unregistered routers (and declined
compiles) keep the per-trial routing loop inside the chunk kernel.

The engines are compiled per workload but **not** per pair: every
``_route_block`` takes per-row ``sources`` / ``targets`` arrays, so one
engine routes many commodities of a demand matrix in the same lockstep
sweep (:meth:`route_pairs` — what :mod:`repro.kernels.traffic` batches
the commodity loop through), while :meth:`route_rows` keeps the classic
fixed-pair entry point by broadcasting the workload's pair.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.result import FailureReason, RoutingResult, erase_loops
from repro.kernels.bfs import BLOCK_BYTES
from repro.kernels.topology import EdgeIndex

__all__ = [
    "PairRoutingUnsupported",
    "pair_router_kernel_for",
    "register_router_kernel",
    "register_router_pair_kernel",
    "router_kernel_for",
    "routing_incidence",
]

#: Exact router type -> kernel compiler (fixed-pair workloads).
_ROUTER_KERNELS: dict[type, Callable] = {}

#: Exact router type -> pair-kernel compiler (demand-matrix workloads).
_PAIR_KERNELS: dict[type, Callable] = {}

#: Row status codes shared by the engines.
_ACTIVE, _SUCCESS, _BUDGET, _FAIL = 0, 1, 2, 3


class PairRoutingUnsupported(Exception):
    """A pair kernel cannot route one of the requested pairs.

    Raised by :meth:`route_pairs` implementations *before* any probe
    accounting happens (e.g. the waypoint engine finds no geodesic for
    a pair).  Callers catch it and drop the whole batch to the
    per-trial loop, where the same condition surfaces through the
    unchanged per-trial error path with per-spec attribution.
    """


def register_router_kernel(router_type: type, compiler: Callable) -> None:
    """Register the vectorized counterpart of a router type.

    ``router_type`` is matched by *exact* type (a subclass that
    overrides ``_route`` must register its own kernel or it falls back
    to the per-trial loop — never to a kernel with the wrong probe
    sequence).  ``compiler(router, index, source_code, target_code,
    budget)`` must return an object with ``route_rows(masks) ->
    list[RoutingResult]`` — ``masks`` is the ``(rows, edges)``
    open-edge matrix of the trials to route, and every returned result
    must be field-identical to ``router.route(model_i, source, target,
    budget=budget)`` — or ``None`` to decline.  Registration is per
    process, at import time of the module defining the router, so
    worker processes re-register through the same import.
    """
    _ROUTER_KERNELS[router_type] = compiler


def router_kernel_for(
    router, index: EdgeIndex, source_code: int, target_code: int,
    budget: int | None,
):
    """Compile the routing kernel for one workload, or ``None``.

    Declines (-> per-trial fallback) for unregistered router types and
    for budgets the per-trial :class:`~repro.core.probe.ProbeOracle`
    would reject (``budget < 1``), so those errors keep surfacing
    through the unchanged per-trial path.
    """
    compiler = _ROUTER_KERNELS.get(type(router))
    if compiler is None:
        return None
    if budget is not None and budget < 1:
        return None
    return compiler(router, index, source_code, target_code, budget)


def register_router_pair_kernel(
    router_type: type, compiler: Callable
) -> None:
    """Register the per-row-pair counterpart of a router type.

    ``compiler(router, index, budget)`` must return an object with
    ``route_pairs(masks, sources, targets) -> list[RoutingResult]`` —
    row ``i`` routed from ``sources[i]`` to ``targets[i]`` (vertex
    codes) over ``masks[i]``, field-identical to ``router.route(
    model_i, verts[sources[i]], verts[targets[i]], budget=budget)`` —
    or ``None`` to decline.  ``route_pairs`` may raise
    :class:`PairRoutingUnsupported` for a pair it cannot replay; the
    caller then falls back to the per-trial loop for the whole batch.
    """
    _PAIR_KERNELS[router_type] = compiler


def pair_router_kernel_for(router, index: EdgeIndex, budget: int | None):
    """Compile the per-row-pair routing kernel for one workload, or None.

    The demand-matrix analogue of :func:`router_kernel_for`: matched by
    exact router type, declining for unregistered routers and for
    budgets the per-trial oracle would reject.
    """
    compiler = _PAIR_KERNELS.get(type(router))
    if compiler is None:
        return None
    if budget is not None and budget < 1:
        return None
    return compiler(router, index, budget)


def routing_incidence(
    index: EdgeIndex,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Padded per-vertex incidence in ``graph.neighbors(v)`` order.

    Distinct from ``index.incidence()`` — whose slot order is an
    artifact of the edge enumeration and fine for order-independent
    reachability — because probe order is observable: ``queries`` stops
    counting mid-neighbourhood on discovery or budget exhaustion.
    Padding slots carry the sentinels ``num_vertices`` / ``num_edges``
    (never 0), so masked scatters cannot alias vertex 0 or edge 0.
    Cached on the index, amortised over the workload's lifetime.
    """
    cached = getattr(index, "_routing_incidence", None)
    if cached is not None:
        return cached
    graph = index.graph
    verts = index.verts
    eid = index.eid
    code = index.code
    num_vertices = index.num_vertices
    num_edges = index.num_edges
    rows = []
    width = 1
    for v in verts:
        row = [
            (code[w], eid[graph.edge_key(v, w)]) for w in graph.neighbors(v)
        ]
        width = max(width, len(row))
        rows.append(row)
    inc_nbr = np.full((num_vertices, width), num_vertices, dtype=np.int64)
    inc_eid = np.full((num_vertices, width), num_edges, dtype=np.int64)
    inc_valid = np.zeros((num_vertices, width), dtype=bool)
    for c, row in enumerate(rows):
        for j, (w, e) in enumerate(row):
            inc_nbr[c, j] = w
            inc_eid[c, j] = e
            inc_valid[c, j] = True
    out = (inc_nbr, inc_eid, inc_valid)
    index._routing_incidence = out
    return out


def _budget_raise_slot(
    newp: np.ndarray, queries: np.ndarray, budget: int | None, width: int
) -> np.ndarray:
    """First slot whose probe would trip the budget, else ``width``.

    The oracle raises when a *new* probe arrives with ``queries``
    already at the budget — before counting or answering it — so the
    raise slot is the first new-probe slot where the count of earlier
    new probes in this expansion has pushed ``queries`` to the limit.
    """
    if budget is None:
        return np.full(newp.shape[0], width, dtype=np.int64)
    cum_excl = np.cumsum(newp, axis=1) - newp
    hit = newp & (queries[:, None] + cum_excl >= budget)
    return np.where(hit.any(axis=1), hit.argmax(axis=1), width)


def _block_rows(num_vertices: int, num_edges: int) -> int:
    # Per-row footprint across an engine's state arrays (probed mask,
    # tree/queue/parent arrays); same soft cap as kernels.bfs.
    per_row = max(1, 2 * (num_edges + 1) + 40 * (num_vertices + 1))
    return max(1, BLOCK_BYTES // per_row)


class _EngineBase:
    """Shared plumbing: blocking, result assembly, trivial pairs.

    Engines carry an optional *fixed* pair (``source_code`` /
    ``target_code`` — the workload's probe pair, ``None`` for
    demand-matrix engines) but every ``_route_block`` routes per-row
    ``src`` / ``tgt`` arrays; :meth:`route_rows` broadcasts the fixed
    pair, :meth:`route_pairs` passes the commodities straight through.
    """

    def __init__(
        self, router, index: EdgeIndex, source_code: int | None,
        target_code: int | None, budget: int | None,
    ) -> None:
        self._router = router
        self._index = index
        self._source_code = source_code
        self._target_code = target_code
        self._budget = budget

    def route_rows(self, masks: np.ndarray) -> list[RoutingResult]:
        rows = masks.shape[0]
        src_code, tgt_code = self._source_code, self._target_code
        if src_code is None or tgt_code is None:
            raise ValueError(
                "engine compiled without a fixed pair; use route_pairs"
            )
        if src_code == tgt_code:
            # Every router short-circuits `source == target` to the
            # single-vertex path before probing anything.
            return [self._success(0, [src_code], src_code, tgt_code)] * rows
        src = np.full(rows, src_code, dtype=np.int64)
        tgt = np.full(rows, tgt_code, dtype=np.int64)
        return self._route_blocked(masks, src, tgt)

    def route_pairs(
        self,
        masks: np.ndarray,
        sources: Sequence[int],
        targets: Sequence[int],
    ) -> list[RoutingResult]:
        """Route row ``i`` from ``sources[i]`` to ``targets[i]``.

        The demand-matrix entry point: many lockstep pairs per sweep.
        Trivial ``source == target`` rows short-circuit exactly like
        the per-trial routers (single-vertex path, zero probes).
        """
        src = np.asarray(sources, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.int64)
        rows = masks.shape[0]
        if src.shape != (rows,) or tgt.shape != (rows,):
            raise ValueError("sources/targets must carry one code per row")
        trivial = src == tgt
        if not trivial.any():
            return self._route_blocked(masks, src, tgt)
        out: list[RoutingResult | None] = [None] * rows
        for row in np.nonzero(trivial)[0].tolist():
            code = int(src[row])
            out[row] = self._success(0, [code], code, code)
        keep = np.nonzero(~trivial)[0]
        if keep.size:
            routed = self._route_blocked(masks[keep], src[keep], tgt[keep])
            for row, result in zip(keep.tolist(), routed):
                out[row] = result
        return out  # type: ignore[return-value]

    def _route_blocked(
        self, masks: np.ndarray, src: np.ndarray, tgt: np.ndarray
    ) -> list[RoutingResult]:
        rows = masks.shape[0]
        out: list[RoutingResult] = []
        block = _block_rows(self._index.num_vertices, self._index.num_edges)
        for lo in range(0, rows, block):
            hi = min(lo + block, rows)
            out.extend(
                self._route_block(masks[lo:hi], src[lo:hi], tgt[lo:hi])
            )
        return out

    def _success(
        self, queries: int, codes: list[int], src: int, tgt: int
    ) -> RoutingResult:
        verts = self._index.verts
        path = [verts[c] for c in erase_loops(codes)]
        return RoutingResult(
            source=verts[src],
            target=verts[tgt],
            success=True,
            queries=queries,
            path=path,
            router=self._router.name,
        )

    def _failure(
        self, queries: int, budget_hit: bool, src: int, tgt: int
    ) -> RoutingResult:
        verts = self._index.verts
        if budget_hit:
            reason = FailureReason.BUDGET
        elif self._router.is_complete:
            reason = FailureReason.EXHAUSTED
        else:
            reason = FailureReason.GAVE_UP
        return RoutingResult(
            source=verts[src],
            target=verts[tgt],
            success=False,
            queries=queries,
            failure=reason,
            router=self._router.name,
        )

    def _mask_ext(self, masks: np.ndarray) -> np.ndarray:
        # One sentinel edge column (always closed) absorbs padded-slot
        # gathers without branching.
        rows, num_edges = masks.shape
        out = np.zeros((rows, num_edges + 1), dtype=bool)
        out[:, :num_edges] = masks
        return out


class _LocalBFSEngine(_EngineBase):
    """Lockstep replay of :class:`~repro.routers.bfs.LocalBFSRouter`.

    Per trial and sweep: pop the FIFO head, probe every neighbour in
    order (already-probed edges answer from the memo for free), adopt
    open edges to undiscovered vertices, stop inclusively on target
    discovery or exclusively on the budget raise.
    """

    def _route_block(
        self, masks: np.ndarray, src: np.ndarray, tgt: np.ndarray
    ) -> list[RoutingResult]:
        index = self._index
        num_vertices, num_edges = index.num_vertices, index.num_edges
        budget = self._budget
        rows = masks.shape[0]
        inc_nbr, inc_eid, inc_valid = routing_incidence(index)
        width = inc_nbr.shape[1]
        slots = np.arange(width, dtype=np.int64)
        mask_ext = self._mask_ext(masks)
        probed = np.zeros((rows, num_edges + 1), dtype=bool)
        intree = np.zeros((rows, num_vertices + 1), dtype=bool)
        rowids = np.arange(rows, dtype=np.int64)
        intree[rowids, src] = True
        parent = np.full((rows, num_vertices + 1), -1, dtype=np.int64)
        queue = np.zeros((rows, max(1, num_vertices)), dtype=np.int64)
        queue[:, 0] = src
        head = np.zeros(rows, dtype=np.int64)
        tail = np.ones(rows, dtype=np.int64)
        queries = np.zeros(rows, dtype=np.int64)
        status = np.zeros(rows, dtype=np.int8)
        act = rowids
        while act.size:
            empty = head[act] >= tail[act]
            if empty.any():
                status[act[empty]] = _FAIL
                act = act[~empty]
                if not act.size:
                    break
            x = queue[act, head[act]]
            head[act] += 1
            nbr = inc_nbr[x]
            eid = inc_eid[x]
            arow = act[:, None]
            open_ = mask_ext[arow, eid]
            newp = inc_valid[x] & ~probed[arow, eid]
            jraise = _budget_raise_slot(newp, queries[act], budget, width)
            add = open_ & ~intree[arow, nbr]
            disc = add & (nbr == tgt[act][:, None])
            any_disc = disc.any(axis=1)
            jdisc = np.where(any_disc, disc.argmax(axis=1), width)
            raised = (jraise < width) & (jraise <= jdisc)
            jstop = np.where(raised, jraise, np.minimum(jdisc + 1, width))
            live = slots[None, :] < jstop[:, None]
            pexec = newp & live
            probed[arow, eid] |= pexec
            queries[act] += pexec.sum(axis=1)
            addeff = add & live
            intree[arow, nbr] |= addeff
            r, c = np.nonzero(addeff)
            parent[act[r], nbr[r, c]] = x[r]
            enq = addeff & (nbr != tgt[act][:, None])
            pos = tail[act, None] + np.cumsum(enq, axis=1) - enq
            r, c = np.nonzero(enq)
            queue[act[r], pos[r, c]] = nbr[r, c]
            tail[act] += enq.sum(axis=1)
            won = ~raised & any_disc
            status[act[raised]] = _BUDGET
            status[act[won]] = _SUCCESS
            act = act[~(raised | won)]
        out = []
        for row in range(rows):
            q = int(queries[row])
            s, t = int(src[row]), int(tgt[row])
            if status[row] == _SUCCESS:
                out.append(self._success(q, _chain(parent[row], t), s, t))
            else:
                out.append(self._failure(q, status[row] == _BUDGET, s, t))
        return out


class _BidirectionalEngine(_EngineBase):
    """Lockstep replay of ``BidirectionalBFSRouter``.

    Each sweep expands one vertex from the smaller live frontier (ties
    to the source side), probing every neighbour in order; open edges
    join the expanding tree first, then meet-detection against the
    other tree stops the row inclusively.
    """

    def _route_block(
        self, masks: np.ndarray, src: np.ndarray, tgt: np.ndarray
    ) -> list[RoutingResult]:
        index = self._index
        num_vertices, num_edges = index.num_vertices, index.num_edges
        budget = self._budget
        rows = masks.shape[0]
        inc_nbr, inc_eid, inc_valid = routing_incidence(index)
        width = inc_nbr.shape[1]
        slots = np.arange(width, dtype=np.int64)
        mask_ext = self._mask_ext(masks)
        probed = np.zeros((rows, num_edges + 1), dtype=bool)
        shape_v = (rows, num_vertices + 1)
        rowids = np.arange(rows, dtype=np.int64)
        intree = [np.zeros(shape_v, dtype=bool) for _ in range(2)]
        parent = [np.full(shape_v, -1, dtype=np.int64) for _ in range(2)]
        queue = [
            np.zeros((rows, max(1, num_vertices)), dtype=np.int64)
            for _ in range(2)
        ]
        head = [np.zeros(rows, dtype=np.int64) for _ in range(2)]
        tail = [np.ones(rows, dtype=np.int64) for _ in range(2)]
        for side, root in ((0, src), (1, tgt)):
            intree[side][rowids, root] = True
            queue[side][:, 0] = root
        queries = np.zeros(rows, dtype=np.int64)
        status = np.zeros(rows, dtype=np.int8)
        meet_at = np.full(rows, -1, dtype=np.int64)
        act = np.arange(rows, dtype=np.int64)
        while act.size:
            len_s = tail[0][act] - head[0][act]
            len_t = tail[1][act] - head[1][act]
            dead = (len_s == 0) | (len_t == 0)
            if dead.any():
                status[act[dead]] = _FAIL
                act = act[~dead]
                len_s = len_s[~dead]
                len_t = len_t[~dead]
                if not act.size:
                    break
            side_s = len_s <= len_t
            x = np.where(
                side_s,
                queue[0][act, head[0][act]],
                queue[1][act, head[1][act]],
            )
            head[0][act] += side_s
            head[1][act] += ~side_s
            nbr = inc_nbr[x]
            eid = inc_eid[x]
            arow = act[:, None]
            open_ = mask_ext[arow, eid]
            newp = inc_valid[x] & ~probed[arow, eid]
            jraise = _budget_raise_slot(newp, queries[act], budget, width)
            in_s = intree[0][arow, nbr]
            in_t = intree[1][arow, nbr]
            own_side = side_s[:, None]
            in_own = np.where(own_side, in_s, in_t)
            in_other = np.where(own_side, in_t, in_s)
            add = open_ & ~in_own
            meet = open_ & in_other
            any_meet = meet.any(axis=1)
            jmeet = np.where(any_meet, meet.argmax(axis=1), width)
            raised = (jraise < width) & (jraise <= jmeet)
            jstop = np.where(raised, jraise, np.minimum(jmeet + 1, width))
            live = slots[None, :] < jstop[:, None]
            pexec = newp & live
            probed[arow, eid] |= pexec
            queries[act] += pexec.sum(axis=1)
            addeff = add & live
            for side in range(2):
                on_side = side_s if side == 0 else ~side_s
                sub = addeff & on_side[:, None]
                intree[side][arow, nbr] |= sub
                r, c = np.nonzero(sub)
                parent[side][act[r], nbr[r, c]] = x[r]
                pos = tail[side][act, None] + np.cumsum(sub, axis=1) - sub
                queue[side][act[r], pos[r, c]] = nbr[r, c]
                tail[side][act] += sub.sum(axis=1)
            met = ~raised & any_meet
            if met.any():
                rows_met = np.nonzero(met)[0]
                meet_at[act[rows_met]] = nbr[rows_met, jmeet[rows_met]]
                status[act[rows_met]] = _SUCCESS
            status[act[raised]] = _BUDGET
            act = act[~(raised | met)]
        out = []
        for row in range(rows):
            q = int(queries[row])
            s, t = int(src[row]), int(tgt[row])
            if status[row] == _SUCCESS:
                left = _chain(parent[0][row], int(meet_at[row]))
                right = _chain(parent[1][row], int(meet_at[row]))
                right.reverse()
                out.append(self._success(q, left + right[1:], s, t))
            else:
                out.append(self._failure(q, status[row] == _BUDGET, s, t))
        return out


class _WaypointEngine(_EngineBase):
    """Lockstep replay of the ``WaypointRouter`` BFS legs.

    Segment state is versioned (a per-row stamp) instead of cleared;
    the layered depth counter advances exactly when the FIFO head
    crosses the recorded layer boundary, and the radius cap is checked
    after the increment, before the layer is probed — the per-trial
    order.  Segment backtracking and path stitching stay per-trial
    Python on the (short) discovered segments.

    Waypoint positions are per *pair*: the fixed-pair compile precomputes
    one vector; the pair-mode engine builds vectors lazily per distinct
    pair (cached for the engine's lifetime) and stacks them into a
    per-row matrix — a zero-copy broadcast when a block shares one pair.
    """

    def __init__(
        self, router, index, source_code, target_code, budget,
        wp_pos: np.ndarray | None = None,
    ) -> None:
        super().__init__(router, index, source_code, target_code, budget)
        self._wp_pos = wp_pos
        self._wp_cache: dict[tuple[int, int], np.ndarray] = {}
        if wp_pos is not None:
            self._wp_cache[(source_code, target_code)] = wp_pos

    def _wp_vector(self, src: int, tgt: int) -> np.ndarray:
        """The waypoint-position vector of one pair, built on demand.

        Raises :class:`PairRoutingUnsupported` when the base graph has
        no geodesic for the pair — the per-trial router would raise the
        same condition on every trial, so the caller's per-trial
        fallback reproduces it with per-spec attribution.
        """
        key = (src, tgt)
        vec = self._wp_cache.get(key)
        if vec is not None:
            return vec
        index = self._index
        verts = index.verts
        try:
            waypoints = index.graph.shortest_path(verts[src], verts[tgt])
        except Exception as exc:
            raise PairRoutingUnsupported(
                f"no geodesic for pair ({verts[src]!r}, {verts[tgt]!r})"
            ) from exc
        vec = np.full(index.num_vertices + 1, -1, dtype=np.int64)
        for j, w in enumerate(waypoints):
            code = index.code.get(w)
            if code is None:  # pragma: no cover - defensive
                raise PairRoutingUnsupported(
                    f"waypoint {w!r} is not an indexed vertex"
                )
            vec[code] = j
        self._wp_cache[key] = vec
        return vec

    def _wp_matrix(self, src: np.ndarray, tgt: np.ndarray) -> np.ndarray:
        rows = src.shape[0]
        vec0 = self._wp_vector(int(src[0]), int(tgt[0]))
        if bool((src == src[0]).all()) and bool((tgt == tgt[0]).all()):
            # One shared pair (the classic fixed-pair workload): a
            # broadcast view, no per-row copy.
            return np.broadcast_to(vec0, (rows, vec0.shape[0]))
        return np.stack(
            [
                self._wp_vector(int(s), int(t))
                for s, t in zip(src.tolist(), tgt.tolist())
            ]
        )

    def _route_block(
        self, masks: np.ndarray, src: np.ndarray, tgt: np.ndarray
    ) -> list[RoutingResult]:
        index = self._index
        num_vertices, num_edges = index.num_vertices, index.num_edges
        budget = self._budget
        cap = self._router.max_radius
        rows = masks.shape[0]
        wp_mat = self._wp_matrix(src, tgt)
        inc_nbr, inc_eid, inc_valid = routing_incidence(index)
        width = inc_nbr.shape[1]
        slots = np.arange(width, dtype=np.int64)
        mask_ext = self._mask_ext(masks)
        probed = np.zeros((rows, num_edges + 1), dtype=bool)
        stamp = np.zeros((rows, num_vertices + 1), dtype=np.int64)
        seg = np.ones(rows, dtype=np.int64)
        rowids = np.arange(rows, dtype=np.int64)
        stamp[rowids, src] = 1
        parent = np.full((rows, num_vertices + 1), -1, dtype=np.int64)
        queue = np.zeros((rows, max(1, num_vertices)), dtype=np.int64)
        queue[:, 0] = src
        head = np.zeros(rows, dtype=np.int64)
        tail = np.ones(rows, dtype=np.int64)
        depth = np.zeros(rows, dtype=np.int64)
        layer_end = np.zeros(rows, dtype=np.int64)
        position = np.zeros(rows, dtype=np.int64)
        queries = np.zeros(rows, dtype=np.int64)
        status = np.zeros(rows, dtype=np.int8)
        pathbuf: list[list[int]] = [[int(s)] for s in src]
        act = rowids
        while act.size:
            empty = head[act] >= tail[act]
            if empty.any():
                status[act[empty]] = _FAIL
                act = act[~empty]
                if not act.size:
                    break
            newlayer = head[act] == layer_end[act]
            if newlayer.any():
                depth[act[newlayer]] += 1
                if cap is not None:
                    over = newlayer & (depth[act] > cap)
                    if over.any():
                        status[act[over]] = _FAIL
                        act = act[~over]
                        newlayer = newlayer[~over]
                        if not act.size:
                            break
                layer_end[act[newlayer]] = tail[act[newlayer]]
            x = queue[act, head[act]]
            head[act] += 1
            nbr = inc_nbr[x]
            eid = inc_eid[x]
            arow = act[:, None]
            fresh = inc_valid[x] & (stamp[arow, nbr] != seg[act, None])
            newp = fresh & ~probed[arow, eid]
            jraise = _budget_raise_slot(newp, queries[act], budget, width)
            open_f = fresh & mask_ext[arow, eid]
            disc = open_f & (wp_mat[arow, nbr] > position[act, None])
            any_disc = disc.any(axis=1)
            jdisc = np.where(any_disc, disc.argmax(axis=1), width)
            raised = (jraise < width) & (jraise <= jdisc)
            jstop = np.where(raised, jraise, np.minimum(jdisc + 1, width))
            live = slots[None, :] < jstop[:, None]
            pexec = newp & live
            probed[arow, eid] |= pexec
            queries[act] += pexec.sum(axis=1)
            addv = open_f & live
            r, c = np.nonzero(addv)
            stamp[act[r], nbr[r, c]] = seg[act[r]]
            parent[act[r], nbr[r, c]] = x[r]
            eff_disc = ~raised & any_disc
            enq = addv.copy()
            enq[eff_disc, jdisc[eff_disc]] = False
            pos = tail[act, None] + np.cumsum(enq, axis=1) - enq
            r, c = np.nonzero(enq)
            queue[act[r], pos[r, c]] = nbr[r, c]
            tail[act] += enq.sum(axis=1)
            status[act[raised]] = _BUDGET
            if eff_disc.any():
                for a in np.nonzero(eff_disc)[0]:
                    row = int(act[a])
                    y = int(nbr[a, jdisc[a]])
                    segment = _chain(parent[row], y)
                    pathbuf[row].extend(segment[1:])
                    position[row] = wp_mat[row, y]
                    if y == int(tgt[row]):
                        status[row] = _SUCCESS
                    else:
                        seg[row] += 1
                        queue[row, 0] = y
                        head[row] = 0
                        tail[row] = 1
                        stamp[row, y] = seg[row]
                        parent[row, y] = -1
                        depth[row] = 0
                        layer_end[row] = 0
            act = act[status[act] == _ACTIVE]
        out = []
        for row in range(rows):
            q = int(queries[row])
            s, t = int(src[row]), int(tgt[row])
            if status[row] == _SUCCESS:
                out.append(self._success(q, pathbuf[row], s, t))
            else:
                out.append(self._failure(q, status[row] == _BUDGET, s, t))
        return out


def _chain(parent_row: np.ndarray, code: int) -> list[int]:
    """Backtrack a parent array to the root (parent ``-1``), reversed."""
    out = [code]
    p = int(parent_row[code])
    while p != -1:
        out.append(p)
        p = int(parent_row[p])
    out.reverse()
    return out


def _local_bfs_kernel(router, index, source_code, target_code, budget):
    return _LocalBFSEngine(router, index, source_code, target_code, budget)


def _bidirectional_kernel(router, index, source_code, target_code, budget):
    return _BidirectionalEngine(
        router, index, source_code, target_code, budget
    )


def _waypoint_kernel(router, index, source_code, target_code, budget):
    verts = index.verts
    try:
        waypoints = index.graph.shortest_path(
            verts[source_code], verts[target_code]
        )
    except Exception:
        # No geodesic (disconnected base graph): the per-trial router
        # raises the same error every trial — fall back so it surfaces
        # with per-spec attribution.
        return None
    wp_pos = np.full(index.num_vertices + 1, -1, dtype=np.int64)
    for j, w in enumerate(waypoints):
        code = index.code.get(w)
        if code is None:  # pragma: no cover - defensive
            return None
        wp_pos[code] = j
    return _WaypointEngine(
        router, index, source_code, target_code, budget, wp_pos
    )


def _local_bfs_pair_kernel(router, index, budget):
    return _LocalBFSEngine(router, index, None, None, budget)


def _bidirectional_pair_kernel(router, index, budget):
    return _BidirectionalEngine(router, index, None, None, budget)


def _waypoint_pair_kernel(router, index, budget):
    # Geodesics are per pair and unknown until the demands draw, so the
    # engine builds waypoint vectors lazily (raising
    # PairRoutingUnsupported when a pair has none).
    return _WaypointEngine(router, index, None, None, budget, wp_pos=None)


def _register_builtin_router_kernels() -> None:
    from repro.routers.bfs import BidirectionalBFSRouter, LocalBFSRouter
    from repro.routers.waypoint import (
        HypercubeWaypointRouter,
        MeshWaypointRouter,
        WaypointRouter,
    )

    register_router_kernel(LocalBFSRouter, _local_bfs_kernel)
    register_router_kernel(BidirectionalBFSRouter, _bidirectional_kernel)
    # The subclasses only specialise construction, never the search —
    # same engine, registered per exact type.
    register_router_kernel(WaypointRouter, _waypoint_kernel)
    register_router_kernel(HypercubeWaypointRouter, _waypoint_kernel)
    register_router_kernel(MeshWaypointRouter, _waypoint_kernel)
    register_router_pair_kernel(LocalBFSRouter, _local_bfs_pair_kernel)
    register_router_pair_kernel(
        BidirectionalBFSRouter, _bidirectional_pair_kernel
    )
    register_router_pair_kernel(WaypointRouter, _waypoint_pair_kernel)
    register_router_pair_kernel(
        HypercubeWaypointRouter, _waypoint_pair_kernel
    )
    register_router_pair_kernel(MeshWaypointRouter, _waypoint_pair_kernel)


_register_builtin_router_kernels()
