"""Theory-side computations and empirical curve analysis.

* :mod:`repro.analysis.theory` — the paper's closed-form bounds
  (Theorems 3, 7, 10, 11; Lemma 6) evaluated numerically, log-space
  where values overflow.
* :mod:`repro.analysis.path_counting` — Theorem 3(i)'s combinatorial
  counting argument: exact bounded-walk counts vs the ``n^k l^{2k} l!``
  bound.
* :mod:`repro.analysis.phase_transition` — extracting thresholds,
  scaling exponents and tail rates from measured curves.
"""

from repro.analysis.path_counting import (
    ak_bound,
    open_walk_probability_bound,
    walk_count,
)
from repro.analysis.phase_transition import (
    crossing_point,
    exponential_tail_rate,
    scaling_exponent,
    sharpest_rise,
)
from repro.analysis.theory import (
    double_tree_connection_probability,
    gnp_giant_fraction,
    gnp_local_lower_bound,
    gnp_oracle_lower_bound,
    hypercube_eta_series_ratio,
    log10_ak_bound,
    log10_hypercube_eta,
    log10_hypercube_lower_bound_queries,
    theorem3ii_success_probability,
    theorem7_bound,
)

__all__ = [
    "ak_bound",
    "crossing_point",
    "double_tree_connection_probability",
    "exponential_tail_rate",
    "gnp_giant_fraction",
    "gnp_local_lower_bound",
    "gnp_oracle_lower_bound",
    "hypercube_eta_series_ratio",
    "log10_ak_bound",
    "log10_hypercube_eta",
    "log10_hypercube_lower_bound_queries",
    "open_walk_probability_bound",
    "scaling_exponent",
    "sharpest_rise",
    "theorem3ii_success_probability",
    "theorem7_bound",
    "walk_count",
]
