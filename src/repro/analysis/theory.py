"""Closed-form quantities from the paper, evaluated numerically.

Everything a benchmark wants to overlay next to a measurement:
Theorem 3's bounds (in log-space — the quantities are astronomically
large), Lemma 6's exact connection probability, Theorem 7's local
lower bound, Theorem 10/11's ``G(n,p)`` bounds, and the Erdős–Rényi
giant-component fraction.

Conventions: ``log10_*`` functions return base-10 logarithms (the
linear values overflow floats for interesting parameters); plain
functions return probabilities/counts directly.
"""

from __future__ import annotations

import math

from repro.percolation.galton_watson import level_reach_probability

__all__ = [
    "double_tree_connection_probability",
    "gnp_giant_fraction",
    "gnp_local_lower_bound",
    "gnp_oracle_lower_bound",
    "hypercube_eta_series_ratio",
    "log10_ak_bound",
    "log10_hypercube_eta",
    "log10_hypercube_lower_bound_queries",
    "theorem3ii_success_probability",
    "theorem7_bound",
]


def log10_ak_bound(n: int, l: int, k: int) -> float:
    """Return ``log10`` of the path-count bound ``|A_k| ≤ n^k l^{2k} l!``.

    ``A_k`` is the set of (possibly non-simple) length-``l+2k`` paths
    from the target to a fixed boundary vertex that stay inside the
    radius-``l`` ball (Theorem 3(i)'s counting argument).
    """
    if n < 1 or l < 1 or k < 0:
        raise ValueError("need n >= 1, l >= 1, k >= 0")
    return (
        k * math.log10(n)
        + 2 * k * math.log10(l)
        + math.log10(math.factorial(l)) / 1.0
    )


def hypercube_eta_series_ratio(n: int, alpha: float, beta: float) -> float:
    """Return the geometric ratio ``n l² p² = n^{1 + 2β - 2α}``.

    The η bound sums ``(lp)^l Σ_k (n l² p²)^k``; the sum converges iff
    this ratio is < 1, i.e. ``β < α - 1/2`` — exactly the theorem's
    constraint.
    """
    _check_hypercube_params(n, alpha, beta)
    return n ** (1 + 2 * beta - 2 * alpha)


def log10_hypercube_eta(n: int, alpha: float, beta: float) -> float:
    """Return ``log10 η`` for the hypercube cut bound.

    ``η = (lp)^l / (1 - n l² p²)`` with ``l = n^β`` and ``p = n^{-α}``,
    i.e. ``≈ n^{(β-α) n^β}``.  The theorem uses ``2 n^{(β-α)n^β}``; we
    evaluate the sharper form and expose the factor separately.
    Requires the series to converge (``β < α - 1/2``).
    """
    ratio = hypercube_eta_series_ratio(n, alpha, beta)
    if ratio >= 1:
        raise ValueError(
            f"η series diverges: n^(1+2β-2α) = {ratio:.3g} >= 1 "
            "(need β < α - 1/2)"
        )
    l = n**beta
    lead = l * (beta - alpha) * math.log(n)  # ln((lp)^l)
    correction = -math.log(1 - ratio)
    return (lead + correction) / math.log(10)


def log10_hypercube_lower_bound_queries(
    n: int, alpha: float, beta: float
) -> float:
    """Return ``log10`` of Theorem 3(i)'s query threshold.

    The proof concludes ``Pr[X < n^{(α-β)n^β} / n] → 0``: any local
    router must make at least ``≈ n^{(α-β) n^β - 1}`` probes w.h.p.
    """
    _check_hypercube_params(n, alpha, beta)
    l = n**beta
    return (l * (alpha - beta) - 1) * math.log10(n)


def theorem3ii_success_probability(n: int, alpha: float, c: float = 1.0) -> float:
    """Return ``1 - exp(-c n^{1-α})`` — Theorem 3(ii)'s success rate."""
    if not 0 <= alpha < 0.5:
        raise ValueError(f"theorem 3(ii) needs alpha in [0, 1/2), got {alpha}")
    if n < 1 or c <= 0:
        raise ValueError("need n >= 1 and c > 0")
    return 1.0 - math.exp(-c * n ** (1 - alpha))


def double_tree_connection_probability(p: float, depth: int) -> float:
    """Return the exact ``Pr[x ~ y]`` in ``TT_depth`` with retention ``p``.

    Lemma 6's argument made quantitative: pairing each first-tree edge
    with its mirror reduces root-to-root connectivity to root-to-level-
    ``depth`` survival of a binary GW tree with edge probability ``p²``.
    Strictly positive limit iff ``p > 1/√2``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {p!r}")
    return level_reach_probability(2, p * p, depth)


def theorem7_bound(p: float, depth: int, t: float) -> float:
    """Return Theorem 7's bound on ``Pr[X < t]`` for local routers on TT.

    Lemma 5 with ``S`` = second tree: ``η = p^depth`` (the unique branch
    from the second root to a boundary leaf), ``Pr[(u~v) ∈ S] = 0``
    (``u ∉ S``), and ``Pr[u ~ v] = c(p)`` the exact connection
    probability.  Bound: ``t · p^depth / c(p)``, capped at 1.
    """
    c = double_tree_connection_probability(p, depth)
    if c == 0:
        raise ValueError("roots are a.s. disconnected; bound undefined")
    return min(1.0, t * p**depth / c)


def gnp_giant_fraction(c: float, tol: float = 1e-12) -> float:
    """Return the giant-component fraction ``θ(c)`` of ``G(n, c/n)``.

    Largest solution of ``θ = 1 - e^{-cθ}``; zero for ``c <= 1``.
    """
    if c < 0:
        raise ValueError(f"mean degree must be non-negative, got {c}")
    if c <= 1:
        return 0.0
    theta = 1.0
    while True:
        nxt = 1.0 - math.exp(-c * theta)
        if abs(nxt - theta) < tol:
            return nxt
        theta = nxt


def gnp_local_lower_bound(n: int, c: float, k: float, a: float) -> float:
    """Return Theorem 10's bound on ``Pr[X < k]`` for local routers.

    From the proof: ``Pr[X < k] < (√k/n + c²√k/n)/a = (1+c²)√k/(a·n)``,
    where ``a ≤ Pr[u ~ v]``.  Capped at 1.  Tends to 0 for
    ``k = o(n²)`` — hence the Ω(n²) expected complexity.
    """
    if n < 2 or c <= 0 or k < 0 or not 0 < a <= 1:
        raise ValueError("need n >= 2, c > 0, k >= 0, a in (0, 1]")
    return min(1.0, (1 + c * c) * math.sqrt(k) / (a * n))


def gnp_oracle_lower_bound(n: int, c: float, a: float) -> float:
    """Return Theorem 11's bound on ``Pr[comp < a·n^{3/2}]``.

    ``≤ (3c/2)·a^{2/3} + 2/n`` — any oracle algorithm, not just ours.
    """
    if n < 2 or c <= 0 or a < 0:
        raise ValueError("need n >= 2, c > 0, a >= 0")
    return min(1.0, 1.5 * c * a ** (2 / 3) + 2 / n)


def _check_hypercube_params(n: int, alpha: float, beta: float) -> None:
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0 < beta < 1:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
