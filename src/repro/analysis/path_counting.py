"""The path-counting argument of Theorem 3(i), made executable.

The lower-bound proof bounds the number of length-``l+2k`` paths from
the target ``v`` to a boundary vertex ``x`` that stay inside the
radius-``l`` ball ``S``: ``|A_k| ≤ n^k · l^{2k} · l!`` via a k→(k-1)
reduction map (delete the first repeated coordinate's two occurrences;
at most ``n·l²`` pre-images).

This module computes both sides at small scale: the *exact* number of
bounded walks by dynamic programming, and the paper's bound as exact
integers — the tests verify the bound dominates, and by how much.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.graphs.base import Graph, Vertex

__all__ = ["ak_bound", "open_walk_probability_bound", "walk_count"]


def ak_bound(n: int, l: int, k: int) -> int:
    """Return the paper's ``|A_k|`` bound ``n^k l^{2k} l!`` exactly.

    >>> ak_bound(4, 2, 0)
    2
    >>> ak_bound(4, 2, 1)
    32
    """
    if n < 1 or l < 1 or k < 0:
        raise ValueError("need n >= 1, l >= 1, k >= 0")
    return n**k * l ** (2 * k) * math.factorial(l)


def walk_count(
    graph: Graph,
    region: Iterable[Vertex],
    start: Vertex,
    end: Vertex,
    length: int,
) -> int:
    """Count walks of exactly ``length`` steps from ``start`` to ``end``
    that never leave ``region``.

    Dynamic programming over (step, vertex); exact.  Walks may repeat
    vertices — this matches what the paper's ``A_k`` over-counts, so
    ``walk_count ≤ ak_bound`` is the meaningful comparison.
    """
    region_set = set(region)
    if start not in region_set or end not in region_set:
        raise ValueError("start and end must lie inside the region")
    if length < 0:
        raise ValueError("length must be non-negative")
    current: dict[Vertex, int] = {start: 1}
    for _ in range(length):
        nxt: dict[Vertex, int] = {}
        for v, ways in current.items():
            for w in graph.neighbors(v):
                if w in region_set:
                    nxt[w] = nxt.get(w, 0) + ways
        current = nxt
    return current.get(end, 0)


def open_walk_probability_bound(
    n: int, l: int, p: float, k_max: int = 60
) -> float:
    """Return the series bound on ``Pr[(v ~ x) ∈ S]`` from Theorem 3(i).

    ``Σ_k p^{l+2k} |A_k| ≤ (lp)^l Σ_k (n l² p²)^k``; evaluates the
    truncated series (or the closed form when it converges).  This is
    the per-cut-edge η whose smallness drives the exponential lower
    bound.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {p!r}")
    if n < 1 or l < 1:
        raise ValueError("need n >= 1 and l >= 1")
    lead = (l * p) ** l
    ratio = n * l * l * p * p
    if ratio < 1.0:
        return lead / (1.0 - ratio)
    total = 0.0
    term = lead
    for _ in range(k_max):
        total += term
        term *= ratio
        if total > 1.0:
            return 1.0  # bound is vacuous past 1
    return min(1.0, total)
