"""Empirical curve analysis: thresholds, exponents, tails.

The paper's claims are asymptotic; at finite size they appear as shapes
of measured curves.  This module extracts those shapes:

* where a monotone curve crosses a level (threshold location, used to
  place the routing transition of E1 against ``α = 1/2``);
* where a curve rises fastest (transition sharpness);
* power-law exponents with bootstrap CIs (the Θ(n^{3/2}) of E10, the
  O(n) of E4/E8);
* exponential tail rates (the Antal–Pisztora chemical-distance tail of
  E5b, Theorem 4's segment-work tail).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.util.rng import derive_seed
from repro.util.stats import linear_fit, loglog_slope

__all__ = [
    "crossing_point",
    "exponential_tail_rate",
    "scaling_exponent",
    "sharpest_rise",
]


def crossing_point(
    xs: Sequence[float], ys: Sequence[float], target: float
) -> float:
    """Return the interpolated ``x`` where ``ys`` first crosses ``target``.

    Raises :class:`ValueError` if it never does.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if (y0 - target) * (y1 - target) <= 0 and y0 != y1:
            return x0 + (target - y0) * (x1 - x0) / (y1 - y0)
    raise ValueError(f"curve never crosses {target}")


def sharpest_rise(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Return the midpoint ``x`` of the steepest segment of the curve.

    A cheap change-point locator for threshold scans.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    best_slope = -math.inf
    best_mid = (xs[0] + xs[1]) / 2
    for x0, y0, x1, y1 in zip(xs, ys, xs[1:], ys[1:]):
        if x1 == x0:
            continue
        slope = abs(y1 - y0) / (x1 - x0)
        if slope > best_slope:
            best_slope = slope
            best_mid = (x0 + x1) / 2
    return best_mid


def scaling_exponent(
    ns: Sequence[float],
    qs: Sequence[float],
    n_boot: int = 500,
    seed: int = 0,
) -> dict[str, float]:
    """Fit ``q ≈ C · n^k``; return exponent, r² and a bootstrap 95% CI.

    The bootstrap resamples (n, q) pairs, which is appropriate when each
    pair is an independent aggregate.
    """
    k, r2 = loglog_slope(ns, qs)
    pairs = np.array(list(zip(ns, qs)), dtype=float)
    rng = np.random.default_rng(derive_seed(seed, "scaling-exponent"))
    slopes = []
    for _ in range(n_boot):
        idx = rng.integers(0, len(pairs), size=len(pairs))
        sample = pairs[idx]
        xs, ys = sample[:, 0], sample[:, 1]
        if len(set(xs.tolist())) < 2:
            continue
        slopes.append(loglog_slope(xs, ys)[0])
    lo, hi = (
        (float(np.quantile(slopes, 0.025)), float(np.quantile(slopes, 0.975)))
        if slopes
        else (k, k)
    )
    return {"exponent": k, "r2": r2, "ci_lo": lo, "ci_hi": hi}


def exponential_tail_rate(values: Sequence[float], tail_from: float) -> float:
    """Fit ``Pr[X > x] ≈ C·e^{-λx}`` on the tail; return the rate ``λ``.

    Uses the empirical survival function at the observed points above
    ``tail_from``.  Needs at least 3 tail points; raises otherwise.
    A positive λ confirms exponential decay (Theorem 4's Lemma 8 usage).
    """
    arr = np.sort(np.asarray(values, dtype=float))
    tail = arr[arr >= tail_from]
    if len(tail) < 3:
        raise ValueError("need at least 3 tail observations")
    n = len(arr)
    # survival at each tail point: fraction strictly greater
    xs, log_surv = [], []
    for x in np.unique(tail):
        surv = float(np.sum(arr > x)) / n
        if surv > 0:
            xs.append(float(x))
            log_surv.append(math.log(surv))
    if len(xs) < 2:
        raise ValueError("tail too degenerate to fit")
    slope, _, _ = linear_fit(xs, log_surv)
    return -slope
