"""repro — reproduction of *Routing Complexity of Faulty Networks*.

(Angel, Benjamini, Ofek, Wieder; PODC 2005 / arXiv math/0407185.)

The paper asks: when each link of a network fails independently with
probability ``1 - p``, how many edges must a routing algorithm *probe*
to find a surviving path between two vertices — and how does that
compare to merely knowing a path exists?  This package implements the
full apparatus: topologies, percolation, the probe/query model with
enforced locality, every algorithm in the paper, the closed-form
bounds, and an experiment harness that regenerates each theorem's
claim as a table.

Quick start::

    from repro import (
        Hypercube, HashPercolation, LocalBFSRouter, measure_complexity,
    )

    cube = Hypercube(10)
    p = 10 ** -0.3                       # p = n^-alpha, alpha < 1/2
    m = measure_complexity(cube, p=p, router=LocalBFSRouter(),
                           trials=20, seed=0)
    print(m.query_summary())

Layers (bottom-up): :mod:`repro.util`, :mod:`repro.runtime`,
:mod:`repro.graphs`, :mod:`repro.percolation`, :mod:`repro.core`,
:mod:`repro.routers`, :mod:`repro.analysis`, :mod:`repro.experiments`.
"""

from repro.core import (
    ComplexityMeasurement,
    FailureReason,
    InvalidPathError,
    Lemma5Certificate,
    LocalityViolation,
    LocalProbeOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
    Router,
    RoutingResult,
    assemble_measurement,
    ball,
    complexity_specs,
    estimate_certificate,
    measure_complexity,
    run_trial,
)
from repro.runtime import (
    ProcessPoolRunner,
    SerialRunner,
    TrialRunner,
    TrialSpec,
    make_runner,
)
from repro.graphs import (
    Butterfly,
    CompleteGraph,
    DeBruijn,
    DoubleBinaryTree,
    ExplicitGraph,
    Graph,
    Hypercube,
    Mesh,
    RandomMatchingCycle,
    ShuffleExchange,
    Torus,
)
from repro.percolation import (
    GnpPercolation,
    HashPercolation,
    PercolationModel,
    SitePercolation,
    TablePercolation,
    chemical_distance,
    connected,
    giant_fraction,
    hypercube_routing_threshold,
    mesh_critical_probability,
    pair_threshold,
)
from repro.routers import (
    BestFirstRouter,
    BidirectionalBFSRouter,
    DirectedDFSRouter,
    GnpBidirectionalRouter,
    GnpLocalRouter,
    GnpUnidirectionalRouter,
    GreedyRouter,
    HypercubeWaypointRouter,
    LocalBFSRouter,
    MeshWaypointRouter,
    MirrorPairOracleRouter,
    WaypointRouter,
    local_router_suite,
)

__version__ = "1.0.0"

__all__ = [
    "BestFirstRouter",
    "BidirectionalBFSRouter",
    "Butterfly",
    "CompleteGraph",
    "ComplexityMeasurement",
    "DeBruijn",
    "DirectedDFSRouter",
    "DoubleBinaryTree",
    "ExplicitGraph",
    "FailureReason",
    "GnpBidirectionalRouter",
    "GnpLocalRouter",
    "GnpPercolation",
    "GnpUnidirectionalRouter",
    "Graph",
    "GreedyRouter",
    "HashPercolation",
    "Hypercube",
    "HypercubeWaypointRouter",
    "InvalidPathError",
    "Lemma5Certificate",
    "LocalBFSRouter",
    "LocalProbeOracle",
    "LocalityViolation",
    "Mesh",
    "MeshWaypointRouter",
    "MirrorPairOracleRouter",
    "PercolationModel",
    "ProbeBudgetExceeded",
    "ProbeOracle",
    "ProcessPoolRunner",
    "RandomMatchingCycle",
    "Router",
    "RoutingResult",
    "SerialRunner",
    "ShuffleExchange",
    "SitePercolation",
    "TablePercolation",
    "Torus",
    "TrialRunner",
    "TrialSpec",
    "WaypointRouter",
    "__version__",
    "assemble_measurement",
    "ball",
    "chemical_distance",
    "complexity_specs",
    "connected",
    "estimate_certificate",
    "giant_fraction",
    "hypercube_routing_threshold",
    "local_router_suite",
    "make_runner",
    "measure_complexity",
    "mesh_critical_probability",
    "pair_threshold",
    "run_trial",
]
