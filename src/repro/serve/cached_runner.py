"""A runner wrapper that serves sweep points from the result cache.

Every registered experiment executes its trials through
:meth:`~repro.runtime.runner.TrialRunner.run_grouped` — one labelled
group per sweep point — so wrapping the runner is all it takes to give
the *whole registry* point-level caching without touching a single
definition.  :class:`CachedRunner` digests each group
(:func:`repro.serve.digest.point_digest`), answers the hits from the
:class:`~repro.serve.cache.ResultCache`, runs only the missing groups
through the inner runner (as **one** flat batch, so the delta still
parallelises across points), stores their values, and stitches the
result dict back in submission order.  A sweep that shares points with
a cached sweep therefore computes only the delta — the overlap comes
from cache byte-identically.

Plain :meth:`run` batches cache as a single anonymous point, so direct
``runner.run(...)`` callers get whole-batch memoisation.

The cache stores *values* only; ``TrialResult`` wrappers are rebuilt
from the specs in hand, and a batch whose values do not pickle is
executed normally and simply not cached (the cache declines, the run
succeeds).  Counters (``points_total``, ``points_cached``,
``trials_total``, ``trials_executed``) feed the service's progress
reports and the test instrumentation asserting "zero trials executed"
on a repeat job.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.runtime.runner import TrialRunner
from repro.runtime.trial import TrialResult, TrialSpec
from repro.serve.cache import ResultCache
from repro.serve.digest import code_version, point_digest

__all__ = ["CachedRunner"]

_MISS = object()


class CachedRunner(TrialRunner):
    """Serve cached sweep points; delegate the delta to ``inner``.

    ``on_progress`` (optional) is called with a dict snapshot of the
    counters whenever they advance — the service wires it to the job's
    progress stream.  The wrapper does not own ``inner`` unless
    ``own_inner=True``; a service shares one persistent backend runner
    across many per-job wrappers.
    """

    def __init__(
        self,
        inner: TrialRunner,
        cache: ResultCache,
        *,
        version: str | None = None,
        on_progress: Callable[[dict], None] | None = None,
        own_inner: bool = False,
    ) -> None:
        self.inner = inner
        self.cache = cache
        self.version = version if version is not None else code_version()
        self.on_progress = on_progress
        self.own_inner = own_inner
        self.workers = inner.workers
        self.reset_counters()

    # -- instrumentation --------------------------------------------------

    def reset_counters(self) -> None:
        self.points_total = 0
        self.points_cached = 0
        self.trials_total = 0
        self.trials_executed = 0

    def counters(self) -> dict:
        return {
            "points_total": self.points_total,
            "points_cached": self.points_cached,
            "trials_total": self.trials_total,
            "trials_executed": self.trials_executed,
        }

    def _progress(self) -> None:
        if self.on_progress is not None:
            self.on_progress(self.counters())

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self.own_inner:
            self.inner.close()

    # -- execution --------------------------------------------------------

    def _lookup(self, specs: list[TrialSpec]):
        """The cached values for one point, or ``_MISS``.

        A digest failure (an argument that does not pickle) or a
        length mismatch (a stale entry written by a buggier past)
        both mean "execute normally".
        """
        try:
            digest = point_digest(specs, version=self.version)
        except Exception:
            return None, _MISS
        values = self.cache.get(digest)
        if values is None or len(values) != len(specs):
            return digest, _MISS
        return digest, values

    def run(self, specs: Iterable[TrialSpec]) -> list[TrialResult]:
        specs = list(specs)
        digest, values = self._lookup(specs)
        self.points_total += 1
        self.trials_total += len(specs)
        if values is not _MISS:
            self.points_cached += 1
            self._progress()
            return [
                TrialResult(key=spec.key, value=value)
                for spec, value in zip(specs, values)
            ]
        self._progress()
        results = self.inner.run(specs)
        self.trials_executed += len(specs)
        if digest is not None:
            self.cache.put(digest, [result.value for result in results])
        self._progress()
        return results

    def run_grouped(
        self, groups: Iterable[tuple[Any, Iterable[TrialSpec]]]
    ) -> dict[Any, list[Any]]:
        plan: list[tuple[Any, list[TrialSpec], str | None, Any]] = []
        for label, specs in groups:
            specs = list(specs)
            digest, values = self._lookup(specs)
            plan.append((label, specs, digest, values))
        labels = [label for label, _, _, _ in plan]
        if len(set(labels)) != len(labels):
            raise ValueError("group labels must be unique")
        self.points_total += len(plan)
        self.points_cached += sum(
            1 for _, _, _, values in plan if values is not _MISS
        )
        self.trials_total += sum(len(specs) for _, specs, _, _ in plan)
        self._progress()
        misses = [
            (label, specs)
            for label, specs, _, values in plan
            if values is _MISS
        ]
        # The delta executes as ONE flat batch on the inner runner, so
        # missing points still interleave across every worker instead
        # of parallelism stopping at the point boundary.
        executed = self.inner.run_grouped(misses) if misses else {}
        self.trials_executed += sum(len(specs) for _, specs in misses)
        out: dict[Any, list[Any]] = {}
        for label, specs, digest, values in plan:
            if values is _MISS:
                group_values = executed[label]
                if digest is not None:
                    self.cache.put(digest, list(group_values))
                out[label] = group_values
            else:
                out[label] = list(values)
        self._progress()
        return out

    def __repr__(self) -> str:
        return (
            f"CachedRunner({self.inner!r}, cache={self.cache!r}, "
            f"cached={self.points_cached}/{self.points_total} points)"
        )
