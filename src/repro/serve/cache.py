"""Content-addressed result store: finished trial values, by digest.

One entry per sweep point, keyed by :func:`repro.serve.digest.
point_digest` and stored as its own file under the cache directory
(``<dir>/<digest[:2]>/<digest>.rpc``), so entries are independently
creatable, evictable and repairable.  The on-disk format is

    b"RPRC1" + 16-byte BLAKE2b checksum of the payload + pickled values

and every read verifies the checksum before unpickling.  **Any**
defect — missing file, short header, checksum mismatch, unpicklable
payload — degrades to a miss: the corrupt file is deleted (counted as
a ``repair``) and the caller recomputes and rewrites it.  Writes go
through a temp file + :func:`os.replace`, so a crash mid-write leaves
either the old entry or none, never a torn one.

The cap is an LRU over mtimes: reads touch their entry's mtime, and a
store that pushes past either limit — ``cap`` entries, ``cap_bytes``
total payload on disk — evicts the stalest entries until both hold.
``0`` means unbounded on either axis (mirroring the node-side workload
cache).  All counters are thread-safe; the store itself is safe for
concurrent readers with one writer (the service's job executor).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path

__all__ = [
    "CACHE_CAP_BYTES_ENV",
    "CACHE_CAP_ENV",
    "CACHE_DIR_ENV",
    "ResultCache",
    "default_cache_dir",
    "resolve_cache_cap",
    "resolve_cache_cap_bytes",
    "resolve_cache_dir",
]

#: Cache directory when ``--cache-dir`` is not given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Entry cap when ``--cache-cap`` is not given (0 = unbounded).
CACHE_CAP_ENV = "REPRO_CACHE_CAP"

#: Byte cap when ``--cache-cap-bytes`` is not given (0 = unbounded).
CACHE_CAP_BYTES_ENV = "REPRO_CACHE_CAP_BYTES"

_MAGIC = b"RPRC1"
_CHECKSUM_SIZE = 16
_SUFFIX = ".rpc"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/results``."""
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def resolve_cache_dir(directory=None) -> Path:
    """Resolve and validate the cache directory (argument, else env,
    else the per-user default).  An existing non-directory path is
    rejected — silently shadowing a file would destroy it on the first
    store."""
    path = Path(directory).expanduser() if directory else default_cache_dir()
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"cache dir {str(path)!r} exists and is not a directory"
        )
    return path


def resolve_cache_cap(cap=None, *, default: int = 0) -> int:
    """Resolve the entry cap: argument, else ``$REPRO_CACHE_CAP``, else
    ``default`` (0 = unbounded) — argument and environment validated
    identically, like every runtime knob."""
    if cap is None:
        raw = os.environ.get(CACHE_CAP_ENV, "").strip()
        if not raw:
            return default
        try:
            cap = int(raw)
        except ValueError:
            raise ValueError(
                f"${CACHE_CAP_ENV} must be an integer, got {raw!r}"
            ) from None
        if cap < 0:
            raise ValueError(f"${CACHE_CAP_ENV} must be >= 0, got {raw!r}")
        return cap
    if isinstance(cap, bool) or not isinstance(cap, int):
        raise ValueError(f"cache cap must be an integer, got {cap!r}")
    if cap < 0:
        raise ValueError(f"cache cap must be >= 0, got {cap}")
    return cap


def resolve_cache_cap_bytes(cap_bytes=None, *, default: int = 0) -> int:
    """Resolve the byte cap: argument, else ``$REPRO_CACHE_CAP_BYTES``,
    else ``default`` (0 = unbounded)."""
    if cap_bytes is None:
        raw = os.environ.get(CACHE_CAP_BYTES_ENV, "").strip()
        if not raw:
            return default
        try:
            cap_bytes = int(raw)
        except ValueError:
            raise ValueError(
                f"${CACHE_CAP_BYTES_ENV} must be an integer, got {raw!r}"
            ) from None
        if cap_bytes < 0:
            raise ValueError(
                f"${CACHE_CAP_BYTES_ENV} must be >= 0, got {raw!r}"
            )
        return cap_bytes
    if isinstance(cap_bytes, bool) or not isinstance(cap_bytes, int):
        raise ValueError(
            f"cache byte cap must be an integer, got {cap_bytes!r}"
        )
    if cap_bytes < 0:
        raise ValueError(f"cache byte cap must be >= 0, got {cap_bytes}")
    return cap_bytes


class ResultCache:
    """Digest-keyed pickle store with checksums, repair and LRU cap."""

    def __init__(
        self,
        directory=None,
        cap: int | None = None,
        cap_bytes: int | None = None,
    ) -> None:
        self.directory = resolve_cache_dir(directory)
        self.cap = resolve_cache_cap(cap)
        self.cap_bytes = resolve_cache_cap_bytes(cap_bytes)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "repairs": 0,
            "evictions": 0,
            "declined": 0,
        }

    # -- paths ------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}{_SUFFIX}"

    def _entries(self) -> list[Path]:
        return list(self.directory.glob(f"*/*{_SUFFIX}"))

    def entry_count(self) -> int:
        """The number of entries currently on disk."""
        return len(self._entries())

    def total_bytes(self) -> int:
        """The bytes the entries currently occupy on disk."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # -- counters ---------------------------------------------------------

    def _count(self, what: str, n: int = 1) -> None:
        with self._lock:
            self._stats[what] += n

    def stats(self) -> dict:
        """A snapshot of the counters plus the on-disk entry count."""
        with self._lock:
            snapshot = dict(self._stats)
        snapshot["entries"] = self.entry_count()
        snapshot["cap"] = self.cap
        snapshot["bytes"] = self.total_bytes()
        snapshot["cap_bytes"] = self.cap_bytes
        return snapshot

    # -- store ------------------------------------------------------------

    def get(self, digest: str):
        """The values stored under ``digest``, or ``None`` on a miss.

        A defective entry (truncated, corrupted, unpicklable) is
        deleted and reported as a miss — the caller recomputes and the
        next :meth:`put` repairs the entry.  A hit refreshes the
        entry's mtime, making the cap eviction LRU.
        """
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count("misses")
            return None
        header = len(_MAGIC) + _CHECKSUM_SIZE
        payload = blob[header:]
        intact = (
            blob.startswith(_MAGIC)
            and len(blob) >= header
            and blob[len(_MAGIC) : header] == _checksum(payload)
        )
        values = None
        if intact:
            try:
                values = pickle.loads(payload)
            except Exception:
                values = None
        if values is None:
            # Corrupt on disk: remove it so the recompute's put()
            # rewrites a clean entry (recompute-and-repair, not crash).
            try:
                path.unlink()
            except OSError:
                pass
            self._count("repairs")
            self._count("misses")
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self._count("hits")
        return values

    def put(self, digest: str, values) -> bool:
        """Store ``values`` under ``digest``; returns whether it stored.

        Unpicklable values are declined (counted, not raised): caching
        is an optimisation and must never fail a job that the uncached
        path would finish.
        """
        try:
            payload = pickle.dumps(values, protocol=4)
        except Exception:
            self._count("declined")
            return False
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(_checksum(payload))
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._count("declined")
            return False
        self._count("stores")
        if self.cap or self.cap_bytes:
            self._evict_over_cap()
        return True

    def _evict_over_cap(self) -> None:
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
                entries.append((stat.st_mtime, str(path), path, stat.st_size))
            except OSError:
                entries.append((0.0, str(path), path, 0))
        entries.sort(key=lambda e: e[:2])
        count = len(entries)
        total = sum(size for *_, size in entries)
        for _, _, path, size in entries:
            over_count = self.cap and count > self.cap
            over_bytes = self.cap_bytes and total > self.cap_bytes
            if not over_count and not over_bytes:
                return
            try:
                path.unlink()
            except OSError:
                continue
            self._count("evictions")
            count -= 1
            total -= size

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, cap={self.cap}, "
            f"cap_bytes={self.cap_bytes}, entries={self.entry_count()})"
        )


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest()
