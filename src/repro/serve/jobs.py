"""Job state machine and single-flight submission for the service.

A **job** is one experiment run — ``(experiment, scale, seed,
overrides)`` — moving through a four-state machine::

    queued ──> running ──> done
                  └──────> failed

Submissions validate eagerly (unknown experiment, bad scale/seed,
overrides the definition does not accept → :class:`JobRequestError`
before a job exists), then coalesce: an in-flight job with the same
:func:`~repro.serve.digest.job_key` absorbs the duplicate submission
and both callers watch the same computation (**single-flight** — two
identical concurrent POSTs cost one run).  A *finished* key does not
coalesce: resubmitting a completed job creates a fresh job, which then
serves every sweep point from the result cache — that path is the
"repeated query is O(lookup)" product behaviour, and its counters
(``trials_executed == 0``) are how tests assert it.

Jobs execute on a single worker thread over one persistent backend
runner (pool/cluster connections stay warm across jobs), each wrapped
in a per-job :class:`~repro.serve.cached_runner.CachedRunner` so the
per-point counters are the job's own.  Clients streaming a job's
progress hold no lock on it: disconnecting a watcher never touches
the computation, which completes and populates the cache regardless.

A ``job_ttl`` (seconds) bounds the ledger: a *finished* job older than
the TTL is reaped — dropped from the job table — on the next
submission or query, so a long-lived service does not grow its job
dict forever.  Reaping forgets only the bookkeeping entry: the sweep
points live on in the result cache, so resubmitting a reaped job is
the cheap cached path.  A reaped job id answers 404, exactly like an
id that never existed; ``job_ttl=None`` (the default) keeps every job
for the life of the process.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.registry import get_experiment
from repro.experiments.results import ResultTable
from repro.experiments.spec import SCALES
from repro.runtime.runner import TrialRunner
from repro.serve.cache import ResultCache
from repro.serve.cached_runner import CachedRunner
from repro.serve.digest import code_version, job_key

__all__ = ["Job", "JobManager", "JobRequestError"]

#: Terminal job states.
FINISHED = ("done", "failed")


class JobRequestError(ValueError):
    """A submission that can be rejected before a job exists (HTTP 400)."""


def accepted_overrides(spec) -> tuple[str, ...]:
    """The override names a definition accepts: its keyword-only
    parameters beyond the ``(scale, seed, runner)`` contract."""
    try:
        parameters = inspect.signature(spec.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return ()
    return tuple(
        name
        for name, parameter in parameters.items()
        if parameter.kind is inspect.Parameter.KEYWORD_ONLY
        and name not in ("scale", "seed", "runner")
    )


@dataclass
class Job:
    """One experiment run owned by the service."""

    job_id: str
    key: str
    experiment: str
    scale: str
    seed: int
    overrides: dict
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    table: ResultTable | None = None
    progress: dict = field(default_factory=dict)
    #: Submissions absorbed by this in-flight job (single-flight).
    coalesced: int = 0

    def snapshot(self) -> dict:
        """A JSON-safe view of the job for status responses."""
        counters = dict(self.progress)
        executed = counters.get("trials_executed")
        snap = {
            "job_id": self.job_id,
            "key": self.key,
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "overrides": self.overrides,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "coalesced": self.coalesced,
            "cached": self.state == "done" and executed == 0,
            "rows": None if self.table is None else len(self.table),
            **counters,
        }
        if self.started_at is not None:
            end = self.finished_at or time.time()
            snap["elapsed_seconds"] = round(end - self.started_at, 6)
        return snap


class JobManager:
    """Validates, coalesces, schedules and tracks jobs."""

    def __init__(
        self,
        runner: TrialRunner,
        cache: ResultCache,
        job_ttl: float | None = None,
        clock=time.time,
    ) -> None:
        if job_ttl is not None and job_ttl <= 0:
            raise ValueError(f"job_ttl must be positive, got {job_ttl!r}")
        self.runner = runner
        self.cache = cache
        self.job_ttl = job_ttl
        self._clock = clock
        self.version = code_version()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # job key -> queued/running job
        self._ids = itertools.count(1)
        # One worker thread: the backend runner (a process pool or a
        # cluster connection set) is not safe for concurrent batches,
        # so jobs serialise here and parallelise inside the runner.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job"
        )
        self._closed = False

    # -- submission -------------------------------------------------------

    def _validate(self, experiment, scale, seed, overrides):
        if not isinstance(experiment, str) or not experiment.strip():
            raise JobRequestError("experiment must be a non-empty string")
        try:
            spec = get_experiment(experiment)
        except KeyError as exc:
            raise JobRequestError(str(exc.args[0])) from None
        if scale not in SCALES:
            raise JobRequestError(
                f"unknown scale {scale!r}; expected one of {SCALES}"
            )
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise JobRequestError(f"seed must be an integer, got {seed!r}")
        if overrides is None:
            overrides = {}
        if not isinstance(overrides, dict) or any(
            not isinstance(k, str) for k in overrides
        ):
            raise JobRequestError(
                "overrides must be an object with string keys"
            )
        accepted = accepted_overrides(spec)
        unknown = sorted(set(overrides) - set(accepted))
        if unknown:
            raise JobRequestError(
                f"experiment {spec.experiment_id} does not accept "
                f"override(s) {unknown}; accepted: "
                f"{sorted(accepted) or 'none'}"
            )
        return spec, overrides

    def submit(
        self,
        experiment: str,
        scale: str = "small",
        seed: int = 0,
        overrides: dict | None = None,
    ) -> tuple[Job, bool]:
        """Validate and enqueue a job; returns ``(job, created)``.

        ``created=False`` means the submission coalesced onto an
        in-flight job with the same key (single-flight).
        """
        spec, overrides = self._validate(experiment, scale, seed, overrides)
        try:
            key = job_key(
                spec.experiment_id,
                scale,
                seed,
                overrides,
                version=self.version,
            )
        except (TypeError, ValueError) as exc:
            raise JobRequestError(
                f"overrides are not JSON-serialisable: {exc}"
            ) from None
        with self._lock:
            if self._closed:
                raise JobRequestError("service is shutting down")
            self._reap_locked()
            inflight = self._inflight.get(key)
            if inflight is not None and inflight.state not in FINISHED:
                inflight.coalesced += 1
                return inflight, False
            job = Job(
                job_id=f"j{next(self._ids):04d}-{key[:8]}",
                key=key,
                experiment=spec.experiment_id,
                scale=scale,
                seed=seed,
                overrides=dict(overrides),
            )
            self._jobs[job.job_id] = job
            self._inflight[key] = job
            self._executor.submit(self._execute, job, spec)
        return job, True

    # -- execution --------------------------------------------------------

    def _execute(self, job: Job, spec) -> None:
        def _on_progress(counters: dict) -> None:
            with self._lock:
                job.progress.update(counters)

        cached_runner = CachedRunner(
            self.runner,
            self.cache,
            version=self.version,
            on_progress=_on_progress,
        )
        with self._lock:
            if job.state != "queued":  # pragma: no cover - defensive
                return
            job.state = "running"
            job.started_at = time.time()
        try:
            table = spec(
                scale=job.scale,
                seed=job.seed,
                runner=cached_runner,
                **job.overrides,
            )
        except BaseException as exc:
            with self._lock:
                job.progress.update(cached_runner.counters())
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                self._inflight.pop(job.key, None)
            return
        with self._lock:
            job.progress.update(cached_runner.counters())
            job.table = table
            job.state = "done"
            job.finished_at = time.time()
            self._inflight.pop(job.key, None)

    # -- reaping ----------------------------------------------------------

    def _reap_locked(self) -> None:
        """Drop finished jobs past the TTL (caller holds the lock).

        Only terminal states age out — a queued or running job is
        always reachable, however old its submission.
        """
        if self.job_ttl is None:
            return
        cutoff = self._clock() - self.job_ttl
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in FINISHED
            and job.finished_at is not None
            and job.finished_at < cutoff
        ]
        for job_id in stale:
            del self._jobs[job_id]

    # -- queries ----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            self._reap_locked()
            return self._jobs.get(job_id)

    def snapshot(self, job_id: str) -> dict | None:
        with self._lock:
            self._reap_locked()
            job = self._jobs.get(job_id)
            return None if job is None else job.snapshot()

    def jobs(self) -> list[dict]:
        with self._lock:
            self._reap_locked()
            return [job.snapshot() for job in self._jobs.values()]

    def counts(self) -> dict:
        with self._lock:
            self._reap_locked()
            states = [job.state for job in self._jobs.values()]
        return {
            "total": len(states),
            "queued": states.count("queued"),
            "running": states.count("running"),
            "done": states.count("done"),
            "failed": states.count("failed"),
        }

    def close(self) -> None:
        """Finish the job in hand, reject new ones, release the runner."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.runner.close()
