"""In-process service harness + a tiny HTTP client, for tests and
benchmarks.

:func:`start_service` boots a real :class:`~repro.serve.http.
ExperimentService` — real TCP socket on an ephemeral port, real job
executor — on a daemon thread inside the calling process, so tests can
reach through ``service.manager`` / ``service.cache`` for the
instrumentation the end-to-end assertions need ("zero trials
executed", "only the delta points") while clients talk genuine HTTP.

:func:`request` / :func:`submit_job` / :func:`wait_for_job` are the
blocking client helpers the tests and the load-test harness share —
stdlib :mod:`http.client` only, one connection per request (the
service answers ``Connection: close``).
"""

from __future__ import annotations

import http.client
import json
import time

from repro.serve.http import ExperimentService

__all__ = [
    "get_json",
    "request",
    "start_service",
    "submit_job",
    "wait_for_job",
]


def start_service(**kwargs) -> ExperimentService:
    """A running service on ``127.0.0.1:<ephemeral>``; caller stops it.

    Keyword arguments go to :class:`ExperimentService` (backend,
    workers, cache_dir, cache_cap...).  Typical use::

        service = start_service(backend="serial", cache_dir=tmp)
        try:
            ...
        finally:
            service.stop()
    """
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    return ExperimentService(**kwargs).start()


def request(
    service: ExperimentService,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 60.0,
) -> tuple[int, bytes]:
    """One HTTP round-trip; returns ``(status, body_bytes)``."""
    conn = http.client.HTTPConnection(
        service.host, service.port, timeout=timeout
    )
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {} if payload is None else {
            "Content-Type": "application/json"
        }
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def get_json(
    service: ExperimentService, path: str, timeout: float = 60.0
) -> dict:
    """GET ``path`` and decode the JSON body (asserts a 2xx status)."""
    status, body = request(service, "GET", path, timeout=timeout)
    if not 200 <= status < 300:
        raise AssertionError(f"GET {path} -> {status}: {body!r}")
    return json.loads(body)


def submit_job(
    service: ExperimentService,
    experiment: str,
    scale: str = "tiny",
    seed: int = 0,
    overrides: dict | None = None,
) -> dict:
    """POST a job; returns the submission snapshot (with ``job_id``)."""
    payload = {"experiment": experiment, "scale": scale, "seed": seed}
    if overrides is not None:
        payload["overrides"] = overrides
    status, body = request(service, "POST", "/jobs", body=payload)
    if status != 202:
        raise AssertionError(f"POST /jobs -> {status}: {body!r}")
    return json.loads(body)


def wait_for_job(
    service: ExperimentService,
    job_id: str,
    timeout: float = 120.0,
) -> dict:
    """Poll snapshots until the job reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while True:
        snapshot = get_json(service, f"/jobs/{job_id}?wait=0")
        if snapshot["state"] in ("done", "failed"):
            return snapshot
        if time.monotonic() > deadline:
            raise AssertionError(
                f"job {job_id} still {snapshot['state']} after {timeout}s"
            )
        time.sleep(0.02)
