"""The experiment service: ``repro serve`` and its result cache.

Phase 1 of the serving layer from the ROADMAP: turn the runtime into a
long-lived process that answers repeated and overlapping experiment
queries in O(lookup) instead of recomputing them.  Three pieces:

* **content-addressed result cache** (:mod:`repro.serve.cache`,
  :mod:`repro.serve.digest`) — finished trial values stored on disk
  under a BLAKE2b digest of everything that determines them: the
  workload content ids of the sweep point (graph, router, percolation
  factory, conditioning — the PR-3 addressing was built for this key),
  the trial plan (count, per-trial seeds, spec keys/args) and the code
  version.  Granularity is the **sweep point**: a sweep that shares
  points with a cached sweep computes only the delta and stitches the
  rest from cache.
* **caching runner** (:mod:`repro.serve.cached_runner`) — a
  :class:`~repro.runtime.runner.TrialRunner` wrapper that intercepts
  ``run_grouped`` (one group per sweep point in every registered
  definition) and ``run``, so *any* experiment gains point-level
  caching without touching its definition, over *any* backend.
* **HTTP front-end** (:mod:`repro.serve.http`,
  :mod:`repro.serve.jobs`) — a stdlib-asyncio HTTP/1.1 server over a
  persistent :func:`~repro.runtime.backends.make_runner` backend:
  ``POST /jobs`` submits (experiment, scale, seed, overrides),
  ``GET /jobs/<id>`` streams progress as NDJSON,
  ``GET /jobs/<id>/table`` fetches the finished table byte-identical
  to ``repro run``, plus ``/healthz`` and ``/cache/stats``.
  Identical in-flight submissions coalesce to one computation
  (single-flight); a corrupted cache entry is recomputed and
  repaired, never fatal.

Everything runs on the standard library — no new runtime
dependencies.  ``repro serve --port --backend --cache-dir`` is the CLI
entry; :func:`repro.serve.testing.start_service` boots the same server
in-process for tests and benchmarks.
"""

from repro.serve.cache import (
    CACHE_CAP_BYTES_ENV,
    CACHE_CAP_ENV,
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_dir,
    resolve_cache_cap,
    resolve_cache_cap_bytes,
    resolve_cache_dir,
)
from repro.serve.cached_runner import CachedRunner
from repro.serve.digest import (
    code_version,
    job_key,
    point_digest,
    sweep_digest,
)
from repro.serve.http import ExperimentService
from repro.serve.jobs import Job, JobManager

__all__ = [
    "CACHE_CAP_BYTES_ENV",
    "CACHE_CAP_ENV",
    "CACHE_DIR_ENV",
    "CachedRunner",
    "ExperimentService",
    "Job",
    "JobManager",
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "job_key",
    "point_digest",
    "resolve_cache_cap",
    "resolve_cache_cap_bytes",
    "resolve_cache_dir",
    "sweep_digest",
]
