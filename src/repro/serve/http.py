"""The asyncio HTTP/1.1 front-end of the experiment service.

Standard library only: a minimal, deliberately small HTTP/1.1 handler
on :func:`asyncio.start_server` — request line, headers, optional
``Content-Length`` body, one request per connection (responses carry
``Connection: close``).  That is all the service needs, and it keeps
the wire layer auditable instead of adding a framework dependency.

Endpoints
---------

====== ========================= ========================================
Method Path                      Meaning
====== ========================= ========================================
GET    ``/healthz``              service health: resolved backend, cache
                                 dir, cache entry count + stats, job
                                 counts, code version
GET    ``/cache/stats``          result-cache counters
POST   ``/jobs``                 submit ``{experiment, scale, seed,
                                 overrides}`` (JSON); 202 with the job
                                 id, or the coalesced in-flight job's id
GET    ``/jobs``                 all job snapshots
GET    ``/jobs/<id>``            **stream** progress as NDJSON snapshots
                                 until the job finishes;
                                 ``?wait=0`` returns one snapshot
GET    ``/jobs/<id>/table``      the finished table, byte-identical to
                                 ``repro run`` output (``text/plain``);
                                 ``?format=json`` for rows + notes
====== ========================= ========================================

A client that disconnects mid-stream only tears down its own watcher
coroutine — the job runs on the :class:`~repro.serve.jobs.JobManager`
executor thread and completes (and populates the cache) regardless.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from repro.runtime.backends import make_runner, resolve_backend
from repro.serve.cache import ResultCache
from repro.serve.digest import code_version
from repro.serve.jobs import FINISHED, JobManager, JobRequestError

__all__ = ["ExperimentService"]

#: Largest accepted request body (a job submission is a few hundred
#: bytes; anything bigger is a client bug or abuse).
MAX_BODY = 1 << 20

#: Seconds between progress-stream polls of a job's snapshot.
STREAM_POLL_SECONDS = 0.05

#: Seconds a client may take to send its request before the
#: connection is dropped (slowloris guard).
REQUEST_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ExperimentService:
    """The long-lived service: cache + persistent runner + HTTP app.

    Parameters mirror the ``repro serve`` CLI flags; ``backend`` /
    ``workers`` / ``chunksize`` resolve exactly as ``repro run``'s do
    (argument, else environment, validated), and the cache knobs
    resolve through :func:`~repro.serve.cache.resolve_cache_dir` /
    :func:`~repro.serve.cache.resolve_cache_cap`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backend: str | None = None,
        workers: int | None = None,
        chunksize: int | None = None,
        cache_dir=None,
        cache_cap: int | None = None,
        cache_cap_bytes: int | None = None,
        job_ttl: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.backend = resolve_backend(backend)
        self.cache = ResultCache(cache_dir, cache_cap, cache_cap_bytes)
        self.runner = make_runner(workers, chunksize, backend=self.backend)
        self.manager = JobManager(self.runner, self.cache, job_ttl=job_ttl)
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stopping: asyncio.Event | None = None

    # -- request handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                return  # torn or overdue request; nothing to answer
            try:
                await self._dispatch(writer, method, path, query, body)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # pragma: no cover - defensive
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; the job (if any) keeps running
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        request_line = await asyncio.wait_for(
            reader.readline(), REQUEST_TIMEOUT
        )
        if not request_line.strip():
            raise ValueError("empty request")
        try:
            method, target, _version = (
                request_line.decode("latin-1").split()
            )
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), REQUEST_TIMEOUT
            )
        parts = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        return method.upper(), parts.path, query, body

    async def _dispatch(self, writer, method, path, query, body) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self._health())
            return
        if path == "/cache/stats" and method == "GET":
            await self._send_json(writer, 200, self.cache.stats())
            return
        if path == "/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/jobs" and method == "GET":
            await self._send_json(
                writer, 200, {"jobs": self.manager.jobs()}
            )
            return
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/") :]
            job_id, _, tail = rest.partition("/")
            if tail == "table":
                await self._table(writer, job_id, query)
                return
            if tail == "":
                if query.get("wait") == "0":
                    snapshot = self._snapshot_or_404(job_id)
                    await self._send_json(writer, 200, snapshot)
                else:
                    await self._stream(writer, job_id)
                return
        if path in ("/healthz", "/cache/stats", "/jobs") or path.startswith(
            "/jobs/"
        ):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {path}")

    # -- endpoint bodies --------------------------------------------------

    def _health(self) -> dict:
        return {
            "status": "ok",
            "backend": self.backend,
            "runner": repr(self.runner),
            "cache_dir": str(self.cache.directory),
            "cache_entries": self.cache.entry_count(),
            "cache": self.cache.stats(),
            "jobs": self.manager.counts(),
            "code_version": code_version(),
        }

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        unknown = sorted(
            set(payload) - {"experiment", "scale", "seed", "overrides"}
        )
        if unknown:
            raise _HttpError(400, f"unknown field(s) {unknown}")
        if "experiment" not in payload:
            raise _HttpError(400, "missing required field 'experiment'")
        try:
            job, created = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: self.manager.submit(
                    payload["experiment"],
                    payload.get("scale", "small"),
                    payload.get("seed", 0),
                    payload.get("overrides"),
                ),
            )
        except JobRequestError as exc:
            raise _HttpError(400, str(exc)) from None
        snapshot = self.manager.snapshot(job.job_id) or {}
        snapshot["created"] = created
        await self._send_json(writer, 202, snapshot)

    def _snapshot_or_404(self, job_id: str) -> dict:
        snapshot = self.manager.snapshot(job_id)
        if snapshot is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return snapshot

    async def _stream(self, writer, job_id: str) -> None:
        """NDJSON progress: one snapshot line per state/counter change,
        final line is the terminal snapshot."""
        last = self._snapshot_or_404(job_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(_json_line(last))
        await writer.drain()
        while last["state"] not in FINISHED:
            await asyncio.sleep(STREAM_POLL_SECONDS)
            snapshot = self.manager.snapshot(job_id)
            if snapshot is None:
                # Reaped mid-stream (job TTL): end the stream like the
                # job finished — the watcher already has the last state.
                break
            changed = {
                k: v
                for k, v in snapshot.items()
                if k != "elapsed_seconds"
            } != {k: v for k, v in last.items() if k != "elapsed_seconds"}
            last = snapshot
            if changed or snapshot["state"] in FINISHED:
                writer.write(_json_line(snapshot))
                await writer.drain()

    async def _table(self, writer, job_id: str, query) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if job.state != "done" or job.table is None:
            raise _HttpError(
                404,
                f"job {job_id} has no table (state: {job.state}"
                + (f"; error: {job.error}" if job.error else "")
                + ")",
            )
        table = job.table
        if query.get("format") == "json":
            await self._send_json(
                writer,
                200,
                {
                    "experiment_id": table.experiment_id,
                    "title": table.title,
                    "columns": table.columns,
                    "rows": table.rows,
                    "notes": table.notes,
                    "render": table.render(),
                },
            )
            return
        body = table.render().encode()
        await self._send(writer, 200, body, "text/plain; charset=utf-8")

    # -- response plumbing ------------------------------------------------

    async def _send(self, writer, status, body, content_type) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _send_json(self, writer, status, payload) -> None:
        body = json.dumps(payload, default=_json_default).encode()
        await self._send(writer, status, body, "application/json")

    # -- lifecycle --------------------------------------------------------

    async def _run(self, ready=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        if ready is not None:
            ready(self)
        async with self._server:
            await self._stopping.wait()

    def serve_forever(self, ready=None) -> None:
        """Run the service on the calling thread until interrupted
        (the ``repro serve`` entry point).  ``ready(service)`` is
        called once the port is bound — after an ephemeral ``port=0``
        has been replaced by the real one."""
        try:
            asyncio.run(self._run(ready))
        finally:
            self.manager.close()

    # -- in-process harness (tests, benchmarks) ---------------------------

    def start(self) -> "ExperimentService":
        """Serve on a daemon thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._run())
        except Exception:  # pragma: no cover - surfaced via timeout
            self._started.set()

    def stop(self) -> None:
        """Stop accepting, finish the job in hand, release the runner."""
        if self._loop is not None and self._stopping is not None:
            try:
                self._loop.call_soon_threadsafe(self._stopping.set)
            except RuntimeError:  # pragma: no cover - loop already dead
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self.manager.close()

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"


def _json_default(value):
    try:
        return repr(value)
    except Exception:  # pragma: no cover - defensive
        return "<unrepresentable>"


def _json_line(payload: dict) -> bytes:
    return json.dumps(payload, default=_json_default).encode() + b"\n"
