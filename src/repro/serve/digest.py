"""Cache keys: digests of what determines a sweep point's results.

A cached result is only reusable if its key covers **everything** the
result depends on.  For a sweep point that is exactly three things:

* the shared measurement context — graph, router, percolation factory,
  conditioning, ``p``, pair, budget — already content-addressed by the
  workload protocol (:mod:`repro.runtime.workload`): equal context
  *is* an equal ``workload_id``, different context a different one;
* the trial plan — how many trials, their spec keys, and their
  per-trial ``(trial, seed)`` tails (the derived seeds make the master
  seed and the sweep-point labels part of the key for free);
* the code version — results are functions of the source tree, so the
  digest folds in a hash of every ``.py`` file under :mod:`repro`
  (override with ``$REPRO_CODE_VERSION`` when an external build system
  already knows the version).

:func:`point_digest` hashes one sweep point's spec list in trial order
(records are ordered data, so order is significant *within* a point);
:func:`sweep_digest` combines point digests order-insensitively (a
sweep is a set of points); :func:`job_key` identifies a service job —
(experiment, scale, seed, overrides, code version) — canonicalising
the override dict so iteration order never leaks into the key.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.runtime.trial import TrialSpec

__all__ = [
    "CODE_VERSION_ENV",
    "code_version",
    "job_key",
    "point_digest",
    "sweep_digest",
]

#: Overrides the computed source-tree hash (e.g. a build system's
#: artifact id); any non-empty string is accepted verbatim.
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

_DIGEST_SIZE = 16  # bytes; 128-bit BLAKE2b, like workload ids

_code_version_cache: dict[str, str] = {}


def code_version() -> str:
    """The version fragment of every cache key.

    ``$REPRO_CODE_VERSION`` if set, else a BLAKE2b digest of all
    ``.py`` sources under the installed :mod:`repro` package (path +
    contents, sorted), computed once per process.  Editing any source
    file therefore invalidates every cached result — stale entries go
    unused, never wrong, exactly like workload content addressing.
    """
    env = os.environ.get(CODE_VERSION_ENV, "").strip()
    if env:
        return env
    cached = _code_version_cache.get("source")
    if cached is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        cached = h.hexdigest()
        _code_version_cache["source"] = cached
    return cached


def _canonical(value):
    """Recursively order-normalise mappings so equal content fingerprints
    equally however a dict was built (insertion order is not content).
    """
    if isinstance(value, dict):
        return (
            "__dict__",
            tuple(
                (key, _canonical(value[key])) for key in sorted(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("__set__", tuple(sorted(repr(item) for item in value)))
    return value


def _spec_fingerprint(spec: TrialSpec) -> bytes:
    """Canonical bytes for one spec: context id + per-trial tail.

    Workload-referenced specs contribute their 16-byte content id (the
    payload's own digest — graph, router, factory, conditioning all
    fold in there); self-contained specs contribute their callable's
    qualified name.  Either way the spec's ``key``, ``args`` and
    (order-normalised) ``kwargs`` ride along, so the trial index and
    its derived seed are part of the fingerprint.
    """
    if spec.workload is not None:
        context = ("workload", spec.workload.workload_id)
    else:
        context = (
            "fn",
            getattr(spec.fn, "__module__", None),
            getattr(spec.fn, "__qualname__", repr(spec.fn)),
        )
    payload = (
        context,
        _canonical(tuple(spec.key)),
        _canonical(tuple(spec.args)),
        _canonical(dict(spec.kwargs)),
    )
    return pickle.dumps(payload, protocol=4)


def point_digest(
    specs: Sequence[TrialSpec], *, version: str | None = None
) -> str:
    """The cache key of one sweep point: its specs, in trial order.

    Sensitive to every component — workload content (graph, router,
    factory, ``p``...), trial count, per-trial seeds (hence master
    seed and sweep-point labels), spec keys, and the code version.
    Pickling a spec's primitives is deterministic for equal content,
    and dict-valued arguments are order-normalised first.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"repro-point-v1\0")
    h.update((version if version is not None else code_version()).encode())
    h.update(b"\0")
    for spec in specs:
        blob = _spec_fingerprint(spec)
        h.update(len(blob).to_bytes(8, "big"))
        h.update(blob)
    return h.hexdigest()


def sweep_digest(point_digests: Iterable[str]) -> str:
    """Combine per-point digests into one sweep id, order-insensitively.

    A sweep is a *set* of points — two emissions of the same points in
    different orders are the same sweep, so the digests are sorted
    before hashing.  (Duplicate points are kept: a plan that runs a
    point twice is not the plan that runs it once.)
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"repro-sweep-v1\0")
    for digest in sorted(point_digests):
        h.update(digest.encode())
        h.update(b"\0")
    return h.hexdigest()


def job_key(
    experiment: str,
    scale: str,
    seed: int,
    overrides: dict | None = None,
    *,
    version: str | None = None,
) -> str:
    """The single-flight identity of a service job.

    Two submissions with this key are the same computation; in-flight
    duplicates coalesce to one job (:mod:`repro.serve.jobs`).  The
    override dict canonicalises through JSON with sorted keys, so
    ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` are the same job.
    """
    payload = json.dumps(
        {
            "experiment": experiment.upper(),
            "scale": scale,
            "seed": seed,
            "overrides": overrides or {},
            "version": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        payload.encode(), digest_size=_DIGEST_SIZE
    ).hexdigest()
