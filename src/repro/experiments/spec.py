"""Experiment specifications and scale presets.

Every experiment (see the registry in :mod:`repro.experiments.registry`
for the index) is a pure function ``run(scale, seed[, runner]) →
ResultTable`` plus metadata tying it back to the paper.  Scales keep one
code path for tests (``tiny``), benchmarks (``small``) and the
EXPERIMENTS.md record (``medium``).

Definitions that express their trial sweeps through
:mod:`repro.runtime` accept a third ``runner`` keyword; the spec
detects this from the signature and threads the caller's
:class:`~repro.runtime.TrialRunner` through, so ``repro run E1
--workers 8`` parallelises exactly the experiments that opted in while
legacy two-argument definitions keep working unchanged.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.experiments.results import ResultTable

__all__ = ["SCALES", "ExperimentSpec", "pick"]

#: Recognised scale names, cheap → expensive.
SCALES = ("tiny", "small", "medium")


def pick(scale: str, *, tiny, small, medium):
    """Return the per-scale parameter value, validating the scale name.

    >>> pick("small", tiny=1, small=2, medium=3)
    2
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return {"tiny": tiny, "small": small, "medium": medium}[scale]


def _accepts_runner(run: Callable) -> bool:
    """True if ``run`` takes a ``runner`` argument (new-style definition)."""
    try:
        parameters = inspect.signature(run).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "runner" in parameters


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata + runner for one experiment."""

    experiment_id: str
    title: str
    claim: str  # the paper's statement being reproduced
    reference: str  # theorem/lemma/section in the paper
    run: Callable[..., ResultTable] = field(repr=False)

    @property
    def supports_runner(self) -> bool:
        """True when ``run`` routes its trials through a TrialRunner."""
        return _accepts_runner(self.run)

    def __call__(
        self, scale: str = "small", seed: int = 0, runner=None
    ) -> ResultTable:
        """Run the experiment; returns its :class:`ResultTable`.

        ``runner`` is a :class:`repro.runtime.TrialRunner` deciding how
        the experiment's trial sweep executes (``None`` → resolve from
        ``$REPRO_WORKERS``, defaulting to serial).  Experiments whose
        ``run`` has no ``runner`` parameter ignore it.
        """
        if scale not in SCALES:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {SCALES}"
            )
        if self.supports_runner:
            if runner is None:
                from repro.runtime import make_runner

                runner = make_runner()
            table = self.run(scale, seed, runner=runner)
        else:
            table = self.run(scale, seed)
        if not isinstance(table, ResultTable):
            raise TypeError(
                f"experiment {self.experiment_id} returned {type(table)!r}"
            )
        return table
