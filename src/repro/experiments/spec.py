"""Experiment specifications and scale presets.

Every experiment (see the registry in :mod:`repro.experiments.registry`
for the index) is a pure function ``run(scale, seed, runner=...) →
ResultTable`` plus metadata tying it back to the paper.  Scales keep one
code path for tests (``tiny``), benchmarks (``small``) and the
EXPERIMENTS.md record (``medium``).

Every definition expresses its trial sweeps through
:mod:`repro.runtime`: the spec threads the caller's
:class:`~repro.runtime.TrialRunner` into ``run``, so ``repro run E1
--workers 8`` parallelises any experiment in the suite.  (The legacy
two-argument ``run(scale, seed)`` signature was removed once the last
definition migrated.)
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.experiments.results import ResultTable

__all__ = ["SCALES", "ExperimentSpec", "pick"]

#: Recognised scale names, cheap → expensive.
SCALES = ("tiny", "small", "medium")


def pick(scale: str, *, tiny, small, medium):
    """Return the per-scale parameter value, validating the scale name.

    >>> pick("small", tiny=1, small=2, medium=3)
    2
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return {"tiny": tiny, "small": small, "medium": medium}[scale]


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata + runner for one experiment."""

    experiment_id: str
    title: str
    claim: str  # the paper's statement being reproduced
    reference: str  # theorem/lemma/section in the paper
    run: Callable[..., ResultTable] = field(repr=False)

    def __call__(
        self, scale: str = "small", seed: int = 0, runner=None, **overrides
    ) -> ResultTable:
        """Run the experiment; returns its :class:`ResultTable`.

        ``runner`` is a :class:`repro.runtime.TrialRunner` deciding how
        the experiment's trial sweep executes (``None`` → resolve the
        backend and worker count from ``$REPRO_BACKEND`` /
        ``$REPRO_WORKERS``, defaulting to serial).  A runner the spec
        creates for itself is closed before returning — pools and
        cluster connections never outlive the call; pass an explicit
        runner to share it across experiments.

        ``overrides`` forward to the definition's keyword-only sweep
        parameters, for definitions that expose any (e.g. E1's
        ``alphas=``); the experiment service uses them to submit
        partial or extended sweeps.  A definition without matching
        parameters raises ``TypeError``, as any keyword call would.
        """
        if scale not in SCALES:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {SCALES}"
            )
        if runner is None:
            from repro.runtime import make_runner

            with make_runner() as default_runner:
                table = self.run(
                    scale, seed, runner=default_runner, **overrides
                )
        else:
            table = self.run(scale, seed, runner=runner, **overrides)
        if not isinstance(table, ResultTable):
            raise TypeError(
                f"experiment {self.experiment_id} returned {type(table)!r}"
            )
        return table
