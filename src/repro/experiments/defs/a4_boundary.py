"""A4 — ablation: open boundary (mesh) vs periodic boundary (torus).

Theorem 4 is stated for the mesh; near the boundary the supercritical
cluster is slightly thinner, which could in principle distort the O(n)
routing constant measured in E4.  This ablation routes between pairs at
the same distance on a mesh and on a torus of the same size and
compares queries-per-distance: the difference must be a small constant
factor, i.e. boundary effects do not drive the linear law.

Every trial of every (boundary, p, n) point is its own
:class:`TrialSpec`; mesh and torus share per-trial seeds at equal
``(p, n)``, keeping the comparison draw-for-draw coupled.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.mesh import Mesh, Torus
from repro.routers.waypoint import MeshWaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "boundary",
    "p",
    "n",
    "connected_trials",
    "mean_queries",
    "queries_per_distance",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    side = pick(scale, tiny=9, small=13, medium=19)
    distances = pick(scale, tiny=[4, 8], small=[4, 8, 12], medium=[6, 12, 18])
    ps = pick(scale, tiny=[0.7], small=[0.6, 0.8], medium=[0.55, 0.7, 0.85])
    trials = pick(scale, tiny=8, small=16, medium=40)

    graphs = {"mesh": Mesh(2, side), "torus": Torus(2, side)}
    table = ResultTable(
        "A4",
        "Ablation: open vs periodic boundary for mesh routing (Theorem 4)",
        columns=COLUMNS,
    )
    groups = [
        (
            (boundary, p, n),
            complexity_specs(
                graph,
                p=p,
                router=MeshWaypointRouter(),
                pair=Mesh.centered_pair_at_distance(graph, n),
                trials=trials,
                seed=derive_seed(seed, "a4", p, n),  # shared across kinds
                key=("a4", boundary, p, n),
            ),
        )
        for boundary, graph in graphs.items()
        for p in ps
        for n in distances
    ]
    records = runner.run_grouped(groups)
    for boundary, graph in graphs.items():
        for p in ps:
            for n in distances:
                pair = Mesh.centered_pair_at_distance(graph, n)
                m = assemble_measurement(
                    graph,
                    p,
                    MeshWaypointRouter(),
                    records[(boundary, p, n)],
                    pair=pair,
                )
                if not m.connected_trials:
                    continue
                mean_q = m.query_summary().mean
                table.add_row(
                    boundary=boundary,
                    p=p,
                    n=n,
                    connected_trials=m.connected_trials,
                    mean_queries=mean_q,
                    queries_per_distance=mean_q / n,
                )
    table.add_note(
        "queries_per_distance of mesh vs torus should agree within a "
        "small constant factor — boundary thinning does not change the "
        "O(n) law, only (slightly) its constant."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="A4",
        title="Mesh vs torus boundary ablation",
        claim=(
            "Open-boundary effects do not drive Theorem 4's O(n) law; "
            "mesh and torus constants agree up to a small factor."
        ),
        reference="Theorem 4 (methodology)",
        run=run,
    )
)
