"""A2 — ablation: waypoint segment-search schedules.

The shared waypoint engine (Theorems 3(ii)/4) caps its per-segment BFS
radius.  This ablation compares radius caps (1, 2, 4, unbounded) and
the plain BFS baseline on both a supercritical mesh and a supercritical
hypercube: small caps are cheap but give up on detours; the unbounded
schedule is complete and still far cheaper than exhaustive BFS.

Every trial of every (graph, router) pair is its own
:class:`TrialSpec`; all routers of a graph share per-trial seeds, so
the comparison stays draw-for-draw fair under any scheduling.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.routers.bfs import LocalBFSRouter
from repro.routers.hybrid import HybridGreedyRouter
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "graph",
    "p",
    "router",
    "connected_trials",
    "success_rate",
    "mean_queries",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    trials = pick(scale, tiny=8, small=20, medium=50)
    mesh_side = pick(scale, tiny=8, small=12, medium=16)
    cube_n = pick(scale, tiny=6, small=8, medium=10)
    cases = [
        (Mesh(2, mesh_side), 0.65),
        (Hypercube(cube_n), cube_n**-0.3),
    ]
    routers = [
        WaypointRouter(max_radius=1),
        WaypointRouter(max_radius=2),
        WaypointRouter(max_radius=4),
        WaypointRouter(),  # unbounded — complete
        HybridGreedyRouter(switch_distance=2),  # paper's remark
        LocalBFSRouter(),
    ]
    table = ResultTable(
        "A2",
        "Ablation: waypoint segment radius caps vs exhaustive BFS",
        columns=COLUMNS,
    )
    groups = [
        (
            (graph.name, router.name),
            complexity_specs(
                graph,
                p=p,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "a2", graph.name),
                key=("a2", graph.name, router.name),
            ),
        )
        for graph, p in cases
        for router in routers
    ]
    records = runner.run_grouped(groups)
    for graph, p in cases:
        for router in routers:
            m = assemble_measurement(
                graph, p, router, records[(graph.name, router.name)]
            )
            if not m.connected_trials:
                continue
            table.add_row(
                graph=graph.name,
                p=p,
                router=router.name,
                connected_trials=m.connected_trials,
                success_rate=m.success_rate,
                mean_queries=(
                    m.query_summary().mean if m.successes() else float("nan")
                ),
            )
    table.add_note(
        "Expected pattern: success_rate rises with the radius cap and "
        "hits 1.0 for the unbounded schedule; mean_queries of unbounded "
        "waypoint stays well below local-bfs."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="A2",
        title="Waypoint schedule ablation",
        claim=(
            "The per-segment BFS radius trades success probability "
            "against probes; the unbounded schedule is complete yet far "
            "cheaper than exhaustive search (design choice behind "
            "Theorems 3(ii)/4)."
        ),
        reference="Theorems 3(ii) and 4 (methodology)",
        run=run,
    )
)
