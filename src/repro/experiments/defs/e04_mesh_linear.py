"""E4 — mesh routing is O(n) above criticality (Theorem 4).

For ``d ∈ {2, 3}`` and several ``p > p_c(d)``, route between centred
pairs at mesh distance ``n`` inside a cube whose side exceeds ``n``.
The expected probe count must grow *linearly* in ``n`` with a
``p``-dependent constant — verified by a log-log exponent ≈ 1 and a
linear fit with high r².

Every trial of every ``(d, p, n)`` point is its own :class:`TrialSpec`,
so the whole sweep — distances, retention levels and dimensions — runs
as one flat batch across workers.  Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.mesh import Mesh
from repro.percolation.thresholds import mesh_critical_probability
from repro.routers.waypoint import MeshWaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed
from repro.util.stats import linear_fit

COLUMNS = [
    "d",
    "p",
    "n",
    "connected_trials",
    "mean_queries",
    "median_queries",
    "queries_per_distance",
]


def _p_levels(scale: str, d: int) -> list[float]:
    pc = mesh_critical_probability(d)
    return pick(
        scale,
        tiny=[0.8],
        small=[round(pc + 0.12, 3), 0.8],
        medium=[round(pc + 0.08, 3), round(pc + 0.2, 3), 0.8],
    )


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    dims = pick(scale, tiny=[2], small=[2, 3], medium=[2, 3])
    distances = pick(
        scale,
        tiny=[4, 8],
        small=[4, 8, 12, 16],
        medium=[6, 12, 18, 24, 30],
    )
    trials = pick(scale, tiny=6, small=14, medium=30)
    margin = 6

    table = ResultTable(
        "E4",
        "Mesh routing complexity vs distance for p > p_c (expect O(n))",
        columns=COLUMNS,
    )

    def geometry(d: int, n: int):
        graph = Mesh(d, n // d + margin)
        return graph, graph.centered_pair_at_distance(n)

    groups = []
    for d in dims:
        for p in _p_levels(scale, d):
            for n in distances:
                graph, pair = geometry(d, n)
                groups.append(
                    (
                        (d, p, n),
                        complexity_specs(
                            graph,
                            p=p,
                            router=MeshWaypointRouter(),
                            pair=pair,
                            trials=trials,
                            seed=derive_seed(seed, "e4", d, p, n),
                            key=("e4", d, p, n),
                        ),
                    )
                )
    records = runner.run_grouped(groups)

    for d in dims:
        for p in _p_levels(scale, d):
            points = []
            for n in distances:
                graph, pair = geometry(d, n)
                m = assemble_measurement(
                    graph,
                    p,
                    MeshWaypointRouter(),
                    records[(d, p, n)],
                    pair=pair,
                )
                if not m.connected_trials:
                    continue
                summary = m.query_summary()
                table.add_row(
                    d=d,
                    p=p,
                    n=n,
                    connected_trials=m.connected_trials,
                    mean_queries=summary.mean,
                    median_queries=summary.median,
                    queries_per_distance=summary.mean / n,
                )
                points.append((n, summary.mean))
            if len(points) >= 3:
                xs = [x for x, _ in points]
                ys = [y for _, y in points]
                fit = scaling_exponent(xs, ys)
                slope, intercept, r2 = linear_fit(xs, ys)
                table.add_note(
                    f"d={d}, p={p}: queries ~ n^{fit['exponent']:.2f}; "
                    f"linear fit {slope:.1f}·n + {intercept:.0f} "
                    f"(r²={r2:.3f}) — Theorem 4 predicts exponent 1"
                )
    return table


register(
    ExperimentSpec(
        experiment_id="E4",
        title="Mesh O(n) routing above p_c",
        claim=(
            "In M^d_p with any fixed p > p_c(d), a local algorithm routes "
            "between vertices at distance n with expected O(n) probes."
        ),
        reference="Theorem 4",
        run=run,
    )
)
