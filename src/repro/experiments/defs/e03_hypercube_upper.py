"""E3 — the hypercube poly(n) upper bound (Theorem 3(ii)).

For ``α < 1/2`` run the radius-capped waypoint router (the paper's
algorithm) between antipodal vertices and record (a) the success rate —
predicted ``≥ 1 - exp(-c n^{1-α})`` — and (b) how the query count
scales with ``n`` (a log-log fit; poly(n) means a modest, stable
exponent rather than exponential growth).

Every trial of every ``(α, n)`` point is its own :class:`TrialSpec`,
so the sweep — including its largest ``n`` — fans out across workers.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.analysis.theory import theorem3ii_success_probability
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.routers.waypoint import HypercubeWaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "alpha",
    "n",
    "p",
    "connected_trials",
    "success_rate",
    "theory_success_floor",
    "median_queries",
    "mean_queries",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    alphas = pick(scale, tiny=[0.3], small=[0.1, 0.2, 0.3, 0.4], medium=[0.1, 0.2, 0.3, 0.4])
    ns = pick(scale, tiny=[6, 8], small=[8, 10, 12], medium=[8, 10, 12, 14])
    trials = pick(scale, tiny=6, small=16, medium=40)

    table = ResultTable(
        "E3",
        "Hypercube waypoint routing for alpha < 1/2 (poly(n) regime)",
        columns=COLUMNS,
    )
    groups = [
        (
            (alpha, n),
            complexity_specs(
                Hypercube(n),
                p=n**-alpha,
                router=HypercubeWaypointRouter(alpha=alpha),
                trials=trials,
                seed=derive_seed(seed, "e3", alpha, n),
                key=("e3", alpha, n),
            ),
        )
        for alpha in alphas
        for n in ns
    ]
    records = runner.run_grouped(groups)
    for alpha in alphas:
        per_n = []
        for n in ns:
            graph = Hypercube(n)
            p = n**-alpha
            router = HypercubeWaypointRouter(alpha=alpha)
            m = assemble_measurement(graph, p, router, records[(alpha, n)])
            if not m.connected_trials:
                continue
            summary = (
                m.query_summary() if m.successes() else None
            )
            table.add_row(
                alpha=alpha,
                n=n,
                p=p,
                connected_trials=m.connected_trials,
                success_rate=m.success_rate,
                theory_success_floor=theorem3ii_success_probability(
                    n, alpha, c=0.5
                ),
                median_queries=(
                    summary.median if summary else float("nan")
                ),
                mean_queries=summary.mean if summary else float("nan"),
            )
            if summary:
                per_n.append((n, summary.median))
        if len(per_n) >= 3:
            fit = scaling_exponent(
                [x for x, _ in per_n], [y for _, y in per_n]
            )
            table.add_note(
                f"alpha={alpha}: queries ~ n^{fit['exponent']:.2f} "
                f"(r²={fit['r2']:.3f}) — polynomial, as Theorem 3(ii) "
                "predicts (k = O((1-2a)^-1))"
            )
    return table


register(
    ExperimentSpec(
        experiment_id="E3",
        title="Hypercube poly(n) routing upper bound",
        claim=(
            "For p = n^-alpha with alpha < 1/2 there is a local algorithm "
            "routing with n^k probes (k = k(alpha)) with probability at "
            "least 1 - exp(-c n^{1-alpha})."
        ),
        reference="Theorem 3(ii)",
        run=run,
    )
)
