"""E20 (extension) — traffic capacity under structured fault models.

E15 compares fault *structures* — i.i.d. link, node, correlated,
adversarial — through the lens of one probe pair.  This extension asks
the capacity question instead: offer the same ``c``-commodity
permutation demand under each of E15's four fault models (identical
factories, hence identical nominal fault mass at each ``p``) and
measure what the fabric still *carries*:

* **routability** — the pooled delivered fraction — is where fault
  structure should separate hardest: a permutation touches ``2c``
  distinct endpoints, so the pinned-pair escape hatch that saved E15's
  node arm does not generalise — only the canonical pair is pinned,
  and every other commodity endpoint can lose its switch outright;
* **full delivery** punishes correlated outages the most, since one
  void in the wrong pod kills several commodities at once while
  leaving the pooled routability barely dented;
* **congestion** (median max link load) shows the adversarial arm's
  signature: the targeted uplink cuts squeeze the surviving core links
  into carrying detoured traffic from every pod at once.

Spec emission: each ``(p, fault model)`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via
:func:`~repro.core.traffic.traffic_specs` — one frozen Workload per
point, slim ``(trial, seed)`` tails.  The ``iid`` and ``node`` arms
ride the demand-matrix chunk kernel (E15's
:func:`~repro.kernels.complexity.node_model_kernel` registration
covers the draw here too); ``correlated`` and ``adversarial`` carry
unregistered factories and take the per-trial fallback.
"""

from __future__ import annotations

from repro.core.traffic import (
    PermutationTraffic,
    assemble_traffic,
    traffic_specs,
)
from repro.experiments.defs.e15_clos_faults import _factories
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.clos import FatTree
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "k",
    "p",
    "fault_model",
    "commodities",
    "routability",
    "full_delivery_rate",
    "median_max_link_load",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    k = pick(scale, tiny=4, small=4, medium=6)
    ps = pick(
        scale,
        tiny=[0.6, 0.9],
        small=[0.6, 0.75, 0.9],
        medium=[0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    )
    commodities = pick(scale, tiny=4, small=8, medium=16)
    trials = pick(scale, tiny=5, small=12, medium=24)

    table = ResultTable(
        "E20",
        "Fat-tree traffic capacity under i.i.d. vs node vs correlated "
        "vs adversarial faults",
        columns=COLUMNS,
    )

    graph = FatTree(k)
    router = WaypointRouter()
    demands = PermutationTraffic(commodities)
    factories = _factories(k)
    groups = [
        (
            (p, fault_model),
            traffic_specs(
                graph,
                p=p,
                router=router,
                demands=demands,
                trials=trials,
                seed=derive_seed(seed, "e20", p, fault_model),
                model_factory=factories[fault_model],
                key=("e20", p, fault_model),
            ),
        )
        for p in ps
        for fault_model in factories
    ]
    records = runner.run_grouped(groups)

    for p in ps:
        for fault_model in factories:
            m = assemble_traffic(
                graph, p, router, records[(p, fault_model)]
            )
            table.add_row(
                k=k,
                p=p,
                fault_model=fault_model,
                commodities=commodities,
                routability=m.routability,
                full_delivery_rate=m.full_delivery_rate,
                median_max_link_load=m.median_max_link_load(),
            )
    table.add_note(
        "Capacity inverts E15's pair-wise ranking: with 2c endpoints "
        "in play the node arm loses its pinned-pair advantage — any "
        "non-canonical endpoint can lose its switch and take its "
        "commodity with it — correlated voids kill co-located "
        "commodities together (full delivery collapses first), and "
        "the adversarial uplink cuts show up as congestion, squeezing "
        "detoured traffic through the surviving core links."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E20",
        title="Traffic capacity under structured faults (extension)",
        claim=(
            "Under equal nominal fault mass on a fat-tree, a "
            "c-commodity permutation separates fault structures that "
            "single-pair probing ranks differently: node faults hit "
            "unpinned endpoints directly, correlated voids destroy "
            "full delivery fastest, and adversarial cuts convert into "
            "congestion on the surviving core."
        ),
        reference="Section 6 (extension); cf. E15 fault models",
        run=run,
    )
)
