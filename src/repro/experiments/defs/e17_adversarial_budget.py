"""E17 (extension) — adversarial budget vs random damage of equal mass.

The paper's faults are oblivious coins; Lenzen et al.'s are not.  This
extension puts a budget-``b`` adversary
(:class:`~repro.percolation.faults.AdversarialCutPercolation`) on the
``k``-ary fat-tree: it greedily removes the ``b`` edges that hurt the
canonical inter-pod probe most, after which the surviving links fail
i.i.d. at a fixed background rate.  The control arm destroys the *same
expected number of edges* obliviously — pure i.i.d. percolation with
``p`` scaled down so both arms have equal expected surviving mass —
so the table isolates *placement* as the only difference.

Expectation: the fabric's ``(k/2)²`` core-disjoint paths make it
nearly indifferent to where random damage lands, but the adversary
walks straight into the ``k/2``-edge uplink cut — at ``b = k/2`` the
probe pair is severed with certainty while the random arm barely
moves, and already at ``b = k/2 - 1`` a single background fault on
the surviving uplink finishes the job.

Spec emission: each ``(budget, placement)`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via ``complexity_specs``
— one shared Workload per point, slim ``(trial, seed)`` tails.  The
``random`` arm rides the built-in ``TablePercolation`` chunk kernel;
the ``adversarial`` arm's factory is unregistered and takes the
per-trial fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.clos import FatTree
from repro.percolation.faults import AdversarialCutPercolation
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "k",
    "budget",
    "placement",
    "p_background",
    "connected_trials",
    "median_queries",
]

#: Background i.i.d. link survival applied after the targeted removals.
P_BACKGROUND = 0.9


@dataclass(frozen=True)
class _AdversaryFactory:
    """Budget-``b`` greedy cut on the canonical pair, then i.i.d. p."""

    budget: int

    def __call__(self, graph, p, seed):
        return AdversarialCutPercolation(
            graph, p, seed=seed, budget=self.budget
        )


def _matched_p(budget: int, num_edges: int) -> float:
    """Background p scaled so the oblivious arm kills equal mass.

    The adversarial arm keeps each of the ``E - b`` surviving edges
    with probability ``P_BACKGROUND`` (expected open mass
    ``P_BACKGROUND · (E - b)``); the random arm keeps each of the
    ``E`` edges with this probability instead, matching that
    expectation exactly.
    """
    return P_BACKGROUND * (num_edges - budget) / num_edges


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    k = pick(scale, tiny=4, small=4, medium=6)
    budgets = pick(
        scale,
        tiny=[0, 1, 2],
        small=[0, 1, 2, 3, 4],
        medium=[0, 1, 2, 3, 4, 6],
    )
    trials = pick(scale, tiny=5, small=12, medium=20)

    table = ResultTable(
        "E17",
        "Fat-tree routing vs fault placement: budget-b adversary "
        "against oblivious damage of equal expected mass",
        columns=COLUMNS,
    )

    graph = FatTree(k)
    router = WaypointRouter()
    num_edges = graph.num_edges()

    def _arm(budget, placement):
        if placement == "adversarial":
            return P_BACKGROUND, _AdversaryFactory(budget)
        return _matched_p(budget, num_edges), None

    groups = [
        (
            (budget, placement),
            complexity_specs(
                graph,
                p=_arm(budget, placement)[0],
                router=router,
                trials=trials,
                seed=derive_seed(seed, "e17", budget, placement),
                model_factory=_arm(budget, placement)[1],
                key=("e17", budget, placement),
            ),
        )
        for budget in budgets
        for placement in ("adversarial", "random")
    ]
    records = runner.run_grouped(groups)

    for budget in budgets:
        for placement in ("adversarial", "random"):
            p_arm, _ = _arm(budget, placement)
            m = assemble_measurement(
                graph, p_arm, router, records[(budget, placement)]
            )
            median_q = (
                m.query_summary().median
                if m.connected_trials and m.successes()
                else float("nan")
            )
            table.add_row(
                k=k,
                budget=budget,
                placement=placement,
                p_background=p_arm,
                connected_trials=m.connected_trials,
                median_queries=median_q,
            )
    table.add_note(
        "Both arms at a given budget destroy the same expected number "
        "of links; only the placement differs.  The random arm's "
        "connected_trials stays flat across the sweep while the "
        "adversarial arm collapses to 0 by budget k/2 — the uplink "
        "cut of the canonical pair's edge switch."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E17",
        title="Adversarial budget vs oblivious damage (extension)",
        claim=(
            "Equal expected fault mass, wildly unequal effect: a "
            "budget-(k/2) adversary severs a fat-tree probe pair with "
            "certainty while oblivious damage of the same mass leaves "
            "connectivity essentially untouched."
        ),
        reference=(
            "Related work (Lenzen et al.) + Section 6 (extension)"
        ),
        run=run,
    )
)
