"""E7 — local routing on the double tree costs ``≈ p^{-n}`` (Theorem 7).

Measure complete local routers (directed DFS, BFS) between the roots of
``TT_n``, conditioned on connectivity, at several fixed ``p > 1/√2``.
Theorem 7 predicts the query count grows like ``p^{-n}``: we fit
``log(queries)`` against ``n·log(1/p)`` (slope ≈ 1 ⇒ the base matches)
and overlay the Lemma 5 bound with its exact ``η = p^n``.

Every trial of every ``(p, depth, router)`` point is its own
:class:`TrialSpec` — the deepest trees, where a single conditioned
routing attempt costs ``≈ p^{-n}`` probes, spread across workers.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

import math

from repro.analysis.theory import theorem7_bound
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.double_tree import DoubleBinaryTree
from repro.routers.bfs import LocalBFSRouter
from repro.routers.dfs import DirectedDFSRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed
from repro.util.stats import linear_fit

COLUMNS = [
    "p",
    "depth",
    "router",
    "connected_trials",
    "mean_queries",
    "p^-depth",
    "bound_half_at_t",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    ps = pick(scale, tiny=[0.8], small=[0.75, 0.85], medium=[0.75, 0.8, 0.85])
    depths = pick(
        scale, tiny=[3, 5], small=[4, 6, 8, 10], medium=[4, 6, 8, 10, 12]
    )
    trials = pick(scale, tiny=8, small=20, medium=50)

    table = ResultTable(
        "E7",
        "Double-tree local routing cost vs depth (expect ~ p^-n growth)",
        columns=COLUMNS,
    )
    routers = [DirectedDFSRouter(), LocalBFSRouter()]
    groups = [
        (
            (p, depth, router.name),
            complexity_specs(
                DoubleBinaryTree(depth),
                p=p,
                router=router,
                pair=DoubleBinaryTree(depth).roots(),
                trials=trials,
                seed=derive_seed(seed, "e7", p, depth, router.name),
                key=("e7", p, depth, router.name),
            ),
        )
        for p in ps
        for depth in depths
        for router in routers
    ]
    records = runner.run_grouped(groups)
    for p in ps:
        fits: dict[str, list[tuple[float, float]]] = {}
        for depth in depths:
            graph = DoubleBinaryTree(depth)
            pair = graph.roots()
            for router in routers:
                m = assemble_measurement(
                    graph,
                    p,
                    router,
                    records[(p, depth, router.name)],
                    pair=pair,
                )
                if not m.connected_trials:
                    continue
                mean_q = m.query_summary().mean
                # t at which Theorem 7's bound reaches 1/2
                t_half = 0.5 / theorem7_bound(p, depth, 1.0)
                table.add_row(
                    p=p,
                    depth=depth,
                    router=router.name,
                    connected_trials=m.connected_trials,
                    mean_queries=mean_q,
                    **{"p^-depth": p**-depth},
                    bound_half_at_t=t_half,
                )
                fits.setdefault(router.name, []).append(
                    (depth * math.log(1 / p), math.log(mean_q))
                )
        for name, points in fits.items():
            if len(points) >= 3:
                slope, _, r2 = linear_fit(
                    [x for x, _ in points], [y for _, y in points]
                )
                table.add_note(
                    f"p={p}, {name}: log(queries) ~ {slope:.2f} * n*log(1/p) "
                    f"(r²={r2:.3f}); Theorem 7 predicts slope ≈ 1 "
                    "(queries ~ p^-n)"
                )
    return table


register(
    ExperimentSpec(
        experiment_id="E7",
        title="Double-tree local routing is exponential",
        claim=(
            "For any fixed 1/sqrt(2) < p < 1, every local router between "
            "the roots of TT_n makes ~ p^-n probes w.h.p."
        ),
        reference="Theorem 7",
        run=run,
    )
)
