"""Experiment definitions — one module per DESIGN.md §4 index entry.

Modules self-register an :class:`~repro.experiments.spec.ExperimentSpec`
on import; the registry imports them lazily.
"""
