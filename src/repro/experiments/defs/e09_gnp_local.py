"""E9 — local routing in ``G(n, c/n)`` costs ``Ω(n²)`` (Theorem 10).

Run the natural local router for ``c ∈ {2, 3}`` over a sweep of ``n``;
``queries/n²`` should be roughly flat (the Θ(n²) law) and the log-log
exponent ≈ 2.  The proof's probability bound
``Pr[X < k] = O(√k / n)`` is tabulated alongside at ``k = mean``.

Every trial of every ``(c, n)`` point is its own :class:`TrialSpec`,
so the largest ``n`` — a Θ(n²) router run per trial — fans out across
workers.  Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.analysis.theory import gnp_giant_fraction, gnp_local_lower_bound
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.complete import CompleteGraph
from repro.percolation.models import GnpPercolation
from repro.routers.gnp import GnpLocalRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "c",
    "n",
    "connected_trials",
    "mean_queries",
    "queries_over_n2",
    "theory_pr_below_mean",
]


def _factory(graph, p, seed):
    return GnpPercolation(n=graph.num_vertices(), p=p, seed=seed)


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    cs = pick(scale, tiny=[3.0], small=[2.0, 3.0], medium=[2.0, 3.0])
    ns = pick(
        scale,
        tiny=[64, 128],
        small=[128, 256, 512],
        medium=[128, 256, 512, 1024],
    )
    trials = pick(scale, tiny=8, small=16, medium=30)

    table = ResultTable(
        "E9",
        "G(n, c/n) local routing cost vs n (expect Theta(n^2))",
        columns=COLUMNS,
    )
    groups = [
        (
            (c, n),
            complexity_specs(
                CompleteGraph(n),
                p=c / n,
                router=GnpLocalRouter(),
                trials=trials,
                seed=derive_seed(seed, "e9", c, n),
                model_factory=_factory,
                key=("e9", c, n),
            ),
        )
        for c in cs
        for n in ns
    ]
    records = runner.run_grouped(groups)
    for c in cs:
        points = []
        for n in ns:
            graph = CompleteGraph(n)
            m = assemble_measurement(
                graph, c / n, GnpLocalRouter(), records[(c, n)]
            )
            if not m.connected_trials:
                continue
            mean_q = m.query_summary().mean
            giant = gnp_giant_fraction(c)
            table.add_row(
                c=c,
                n=n,
                connected_trials=m.connected_trials,
                mean_queries=mean_q,
                queries_over_n2=mean_q / n**2,
                theory_pr_below_mean=gnp_local_lower_bound(
                    n, c, mean_q, a=giant * giant
                ),
            )
            points.append((n, mean_q))
        if len(points) >= 3:
            fit = scaling_exponent([x for x, _ in points], [y for _, y in points])
            table.add_note(
                f"c={c}: queries ~ n^{fit['exponent']:.2f} "
                f"(r²={fit['r2']:.3f}) — Theorem 10 predicts exponent 2"
            )
    table.add_note(
        "theory_pr_below_mean is Theorem 10's bound on Pr[X < mean]; its "
        "(1+c^2)/ (a n) constant makes it informative only for "
        "k << (a n / (1+c^2))^2, so at these n it typically caps at 1 — "
        "the Theta(n^2) scaling above is the operative check."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E9",
        title="G(n,p) local routing is quadratic",
        claim=(
            "Any local routing algorithm on G(n, c/n), c > 1, has expected "
            "complexity Omega(n^2)."
        ),
        reference="Theorem 10",
        run=run,
    )
)
