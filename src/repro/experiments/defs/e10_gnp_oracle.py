"""E10 — oracle routing in ``G(n, c/n)`` is ``Θ(n^{3/2})`` (Theorem 11).

The bidirectional router's mean complexity over an ``n`` sweep:
``queries/n^{3/2}`` roughly flat, log-log exponent ≈ 1.5, i.e. oracle
routing beats the best local routing by exactly ``√n``.  Theorem 11's
*universal* lower bound ``Pr[comp < a·n^{3/2}] ≤ (3c/2)a^{2/3} + 2/n``
is tabulated at the observed ``a``.

Each ``n`` of the sweep is one :class:`TrialSpec` (the comparison size
also runs the local router inside the same unit), so the scaling-fit
points arrive in deterministic order whatever the schedule.  Its arguments are plain scalars, so the unit stays self-contained:
the heavy objects are built inside the worker, and there is no
shared payload to ship.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.analysis.theory import gnp_oracle_lower_bound
from repro.core.complexity import measure_complexity
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.complete import CompleteGraph
from repro.percolation.models import GnpPercolation
from repro.routers.gnp import GnpBidirectionalRouter, GnpLocalRouter
from repro.runtime import SerialRunner, TrialSpec
from repro.util.rng import derive_seed

COLUMNS = [
    "c",
    "n",
    "connected_trials",
    "mean_queries",
    "queries_over_n15",
    "observed_a",
    "theory_bound_at_a",
    "speedup_vs_local",
]


def _factory(graph, p, seed):
    return GnpPercolation(n=graph.num_vertices(), p=p, seed=seed)


def _size_point(
    n: int,
    c: float,
    trials: int,
    seed: int,
    compare_local: bool,
    local_trials: int,
    local_seed: int,
):
    """Measure one sweep size; ``None`` when no trial connected."""
    graph = CompleteGraph(n)
    m = measure_complexity(
        graph,
        p=c / n,
        router=GnpBidirectionalRouter(),
        trials=trials,
        seed=seed,
        model_factory=_factory,
    )
    if not m.connected_trials:
        return None
    mean_q = m.query_summary().mean
    speedup = float("nan")
    if compare_local:
        local = measure_complexity(
            graph,
            p=c / n,
            router=GnpLocalRouter(),
            trials=local_trials,
            seed=local_seed,
            model_factory=_factory,
        )
        if local.connected_trials:
            speedup = local.query_summary().mean / mean_q
    return {
        "connected_trials": m.connected_trials,
        "mean_queries": mean_q,
        "speedup_vs_local": speedup,
    }


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    c = 3.0
    ns = pick(
        scale,
        tiny=[64, 128],
        small=[256, 512, 1024],
        medium=[256, 512, 1024, 2048],
    )
    trials = pick(scale, tiny=8, small=16, medium=30)
    compare_local_at = pick(scale, tiny=128, small=512, medium=1024)

    table = ResultTable(
        "E10",
        "G(n, c/n) bidirectional oracle routing vs n (expect Theta(n^1.5))",
        columns=COLUMNS,
    )
    specs = [
        TrialSpec(
            key=("e10", n),
            fn=_size_point,
            args=(
                n,
                c,
                trials,
                derive_seed(seed, "e10", n),
                n == compare_local_at,
                max(4, trials // 2),
                derive_seed(seed, "e10-local", n),
            ),
        )
        for n in ns
    ]

    measured = {result.key: result.value for result in runner.run(specs)}
    points = []
    for n in ns:
        cells = measured[("e10", n)]
        if cells is None:
            continue
        mean_q = cells["mean_queries"]
        a = mean_q / n**1.5
        table.add_row(
            c=c,
            n=n,
            connected_trials=cells["connected_trials"],
            mean_queries=mean_q,
            queries_over_n15=a,
            observed_a=a,
            theory_bound_at_a=gnp_oracle_lower_bound(n, c, a),
            speedup_vs_local=cells["speedup_vs_local"],
        )
        points.append((n, mean_q))
    if len(points) >= 3:
        fit = scaling_exponent([x for x, _ in points], [y for _, y in points])
        table.add_note(
            f"queries ~ n^{fit['exponent']:.2f} (r²={fit['r2']:.3f}) — "
            "Theorem 11 predicts exponent 1.5"
        )
    table.add_note(
        "speedup_vs_local at the comparison size should approach sqrt(n) "
        "as n grows (the exact local/oracle separation of Section 5)."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E10",
        title="G(n,p) oracle routing is Theta(n^1.5)",
        claim=(
            "An oracle algorithm routes in G(n, c/n) with average "
            "complexity O(n^1.5), and every oracle algorithm needs "
            "Omega(n^1.5) — a sqrt(n) separation from local routing."
        ),
        reference="Theorem 11",
        run=run,
    )
)
