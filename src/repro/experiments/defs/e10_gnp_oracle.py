"""E10 — oracle routing in ``G(n, c/n)`` is ``Θ(n^{3/2})`` (Theorem 11).

The bidirectional router's mean complexity over an ``n`` sweep:
``queries/n^{3/2}`` roughly flat, log-log exponent ≈ 1.5, i.e. oracle
routing beats the best local routing by exactly ``√n``.  Theorem 11's
*universal* lower bound ``Pr[comp < a·n^{3/2}] ≤ (3c/2)a^{2/3} + 2/n``
is tabulated at the observed ``a``.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.analysis.theory import gnp_oracle_lower_bound
from repro.core.complexity import measure_complexity
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.complete import CompleteGraph
from repro.percolation.models import GnpPercolation
from repro.routers.gnp import GnpBidirectionalRouter, GnpLocalRouter
from repro.util.rng import derive_seed

COLUMNS = [
    "c",
    "n",
    "connected_trials",
    "mean_queries",
    "queries_over_n15",
    "observed_a",
    "theory_bound_at_a",
    "speedup_vs_local",
]


def _factory(graph, p, seed):
    return GnpPercolation(n=graph.num_vertices(), p=p, seed=seed)


def run(scale: str, seed: int) -> ResultTable:
    c = 3.0
    ns = pick(
        scale,
        tiny=[64, 128],
        small=[256, 512, 1024],
        medium=[256, 512, 1024, 2048],
    )
    trials = pick(scale, tiny=8, small=16, medium=30)
    compare_local_at = pick(scale, tiny=128, small=512, medium=1024)

    table = ResultTable(
        "E10",
        "G(n, c/n) bidirectional oracle routing vs n (expect Theta(n^1.5))",
        columns=COLUMNS,
    )
    points = []
    for n in ns:
        graph = CompleteGraph(n)
        m = measure_complexity(
            graph,
            p=c / n,
            router=GnpBidirectionalRouter(),
            trials=trials,
            seed=derive_seed(seed, "e10", n),
            model_factory=_factory,
        )
        if not m.connected_trials:
            continue
        mean_q = m.query_summary().mean
        a = mean_q / n**1.5
        speedup = float("nan")
        if n == compare_local_at:
            local = measure_complexity(
                graph,
                p=c / n,
                router=GnpLocalRouter(),
                trials=max(4, trials // 2),
                seed=derive_seed(seed, "e10-local", n),
                model_factory=_factory,
            )
            if local.connected_trials:
                speedup = local.query_summary().mean / mean_q
        table.add_row(
            c=c,
            n=n,
            connected_trials=m.connected_trials,
            mean_queries=mean_q,
            queries_over_n15=a,
            observed_a=a,
            theory_bound_at_a=gnp_oracle_lower_bound(n, c, a),
            speedup_vs_local=speedup,
        )
        points.append((n, mean_q))
    if len(points) >= 3:
        fit = scaling_exponent([x for x, _ in points], [y for _, y in points])
        table.add_note(
            f"queries ~ n^{fit['exponent']:.2f} (r²={fit['r2']:.3f}) — "
            "Theorem 11 predicts exponent 1.5"
        )
    table.add_note(
        "speedup_vs_local at the comparison size should approach sqrt(n) "
        "as n grows (the exact local/oracle separation of Section 5)."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E10",
        title="G(n,p) oracle routing is Theta(n^1.5)",
        claim=(
            "An oracle algorithm routes in G(n, c/n) with average "
            "complexity O(n^1.5), and every oracle algorithm needs "
            "Omega(n^1.5) — a sqrt(n) separation from local routing."
        ),
        reference="Theorem 11",
        run=run,
    )
)
