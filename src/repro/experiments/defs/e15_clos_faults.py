"""E15 (extension) — a Clos fabric under four fault models.

The paper's percolation is i.i.d. per edge; production fabrics fail in
structured ways.  This extension routes across a ``k``-ary fat-tree
(:class:`~repro.graphs.clos.FatTree`) under four models at the same
nominal survival level ``p`` and compares routing complexity:

* ``iid`` — every link open independently with probability ``p`` (the
  paper's model; :class:`TablePercolation`);
* ``node`` — every *switch* survives with probability ``p`` and a dead
  switch kills all incident links (Safaei & ValadBeigi's router
  failures; :class:`NodeFaultPercolation`, probe endpoints pinned);
* ``correlated`` — outage epicenters at density ``1-p`` grown into
  clusters (:class:`CorrelatedFaultPercolation`, ``spread=0.4``, all
  surviving links kept) — same epicenter mass as ``node`` at the same
  ``p``, but spatially clustered;
* ``adversarial`` — a budget-``k/2-1`` adversary removes the links
  that hurt the probe pair most (one short of the uplink cut), then
  links fail i.i.d. at ``p`` (:class:`AdversarialCutPercolation`).

Expectation: fault *structure*, not fault mass, decides routing cost.
Node faults concentrate the damage — a surviving switch keeps all its
links — so with the probe endpoints pinned there are *fewer*
independent failure points than under i.i.d. link faults and pair
connectivity actually improves at equal nominal ``p``; clustering the
same epicenter mass (``correlated``) swings the other way, carving
voids that disconnect the pair far more often; and the adversary,
starting one removal from the uplink cut, forces long detours through
remote pods even when the pair stays connected.

Spec emission: each ``(p, fault model)`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via ``complexity_specs``
— one shared Workload per point, slim ``(trial, seed)`` tails.  The
``iid`` arm rides the built-in ``TablePercolation`` chunk kernel and
the ``node`` arm opts in below through :func:`node_model_kernel` (the
kernel flips the same per-vertex ``"site"`` coins and kills incident
edges, so records are identical); the ``correlated`` and
``adversarial`` arms carry unregistered fault-model factories and take
the per-trial fallback (``repro info E15`` reports the split).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.clos import FatTree
from repro.kernels import node_model_kernel, register_model_kernel
from repro.percolation.faults import (
    AdversarialCutPercolation,
    CorrelatedFaultPercolation,
    NodeFaultPercolation,
)
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "k",
    "p",
    "fault_model",
    "connected_trials",
    "median_queries",
    "median_frac_probed",
]

#: Cluster growth used by the ``correlated`` arm (see E16 for a sweep).
CORRELATED_SPREAD = 0.4


def _node_factory(graph, p, seed):
    return NodeFaultPercolation(
        graph, p, seed=seed, pinned=graph.canonical_pair()
    )


def _pinned_pair(graph):
    """The switches ``_node_factory`` exempts from failure."""
    return graph.canonical_pair()


# Opt the node arm into the vectorized chunk kernel: the kernel flips
# the same per-vertex "site" coins NodeFaultPercolation flips (pinning
# exactly what the factory pins) and opens an edge iff both endpoints
# survive, so the kernel parity gate (tests/kernels/) holds record for
# record.  Registration runs wherever this module imports — including
# workers that learn of the workload by unpickling `_node_factory`.
register_model_kernel(_node_factory, node_model_kernel(_pinned_pair))


@dataclass(frozen=True)
class _CorrelatedFactory:
    """Outage epicenters at density ``1-p``, clustered; links kept."""

    spread: float

    def __call__(self, graph, p, seed):
        return CorrelatedFaultPercolation(
            graph,
            1.0,
            seed=seed,
            epicenter_rate=1.0 - p,
            spread=self.spread,
            pinned=graph.canonical_pair(),
        )


@dataclass(frozen=True)
class _AdversarialFactory:
    """Budget-``k`` targeted removals, then i.i.d. link faults at p."""

    budget: int

    def __call__(self, graph, p, seed):
        return AdversarialCutPercolation(
            graph, p, seed=seed, budget=self.budget
        )


def _factories(k: int) -> dict:
    return {
        "iid": None,  # default TablePercolation — the kernel path
        "node": _node_factory,
        "correlated": _CorrelatedFactory(spread=CORRELATED_SPREAD),
        "adversarial": _AdversarialFactory(budget=k // 2 - 1),
    }


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    k = pick(scale, tiny=4, small=4, medium=6)
    ps = pick(
        scale,
        tiny=[0.6, 0.9],
        small=[0.5, 0.7, 0.85, 0.95],
        medium=[0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    )
    trials = pick(scale, tiny=5, small=12, medium=24)

    table = ResultTable(
        "E15",
        "Fat-tree routing under i.i.d. vs node vs correlated vs "
        "adversarial faults",
        columns=COLUMNS,
    )

    graph = FatTree(k)
    router = WaypointRouter()
    factories = _factories(k)
    groups = [
        (
            (p, fault_model),
            complexity_specs(
                graph,
                p=p,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "e15", p, fault_model),
                model_factory=factories[fault_model],
                key=("e15", p, fault_model),
            ),
        )
        for p in ps
        for fault_model in factories
    ]
    records = runner.run_grouped(groups)

    for p in ps:
        for fault_model in factories:
            m = assemble_measurement(
                graph, p, router, records[(p, fault_model)]
            )
            if m.connected_trials and m.successes():
                summary = m.query_summary()
                median_q = summary.median
                frac = summary.median / graph.num_edges()
            else:
                median_q = frac = float("nan")
            table.add_row(
                k=k,
                p=p,
                fault_model=fault_model,
                connected_trials=m.connected_trials,
                median_queries=median_q,
                median_frac_probed=frac,
            )
    table.add_note(
        "Structure, not mass: node faults concentrate damage (a "
        "surviving switch keeps all k links), so pinned-pair "
        "connectivity at equal nominal p is no worse than i.i.d. link "
        "faults; clustering the same epicenter mass (correlated) "
        "carves voids and disconnects far more often; the "
        "budget-(k/2-1) adversary sits one removal from the uplink "
        "cut — when the pair survives, its median probe count runs "
        "well above every oblivious arm."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E15",
        title="Fat-tree fault-model comparison (extension)",
        claim=(
            "On a k-ary fat-tree at equal nominal survival p, fault "
            "structure — not fault mass — drives routing complexity: "
            "concentrated node faults leave a pinned pair no worse "
            "connected than i.i.d. link faults, clustered outages "
            "disconnect it far more often, and a budget-(k/2-1) "
            "adversary forces the longest detours of all."
        ),
        reference=(
            "Related work (Safaei-ValadBeigi; Lenzen et al.) + "
            "Section 6 (extension)"
        ),
        run=run,
    )
)
