"""E19 (extension) — hotspot skew: congestion at a fixed fault rate.

E18 sweeps the fault rate under balanced traffic; this extension holds
the percolation fixed (``p`` comfortably above the threshold) and
sweeps the *traffic shape* instead.  A
:class:`~repro.core.traffic.HotspotTraffic` demand sends each of ``c``
commodities either to one shared hotspot (probability ``skew``) or to
a balanced partner, so ``skew = 0`` is permutation-like traffic and
``skew = 1`` is pure incast.

The load-concentration argument is mechanical: every delivered hotspot
commodity must cross one of the hotspot's ``deg`` incident links, so
max link load grows at least like ``skew * delivered / deg`` — the
fat-tree's uplink design cannot help against incast, because the
bottleneck is the destination's own ports, not the core.  Probe cost
per delivered commodity, by contrast, barely moves: finding a path is
a percolation question, not a congestion question, and the oracle
model carries no queueing.  Separating those two curves — congestion
scales with skew while routing complexity does not — is exactly what
the demand-matrix refactor exists to show.

Spec emission: each ``skew`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via
:func:`~repro.core.traffic.traffic_specs` — one frozen Workload per
point, slim ``(trial, seed)`` tails — and rides the demand-matrix
chunk kernel (:mod:`repro.kernels.traffic`) end to end.
"""

from __future__ import annotations

from repro.core.traffic import (
    HotspotTraffic,
    assemble_traffic,
    traffic_specs,
)
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.clos import FatTree
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "k",
    "p",
    "skew",
    "commodities",
    "routability",
    "median_max_link_load",
    "mean_link_load",
    "median_queries_per_delivered",
]

#: Survival probability — fixed, comfortably above the fat-tree threshold.
P_FIXED = 0.9


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    k = pick(scale, tiny=4, small=4, medium=6)
    skews = pick(
        scale,
        tiny=[0.0, 1.0],
        small=[0.0, 0.25, 0.5, 0.75, 1.0],
        medium=[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0],
    )
    commodities = pick(scale, tiny=4, small=8, medium=16)
    trials = pick(scale, tiny=5, small=12, medium=24)

    table = ResultTable(
        "E19",
        "Hotspot skew sweep at fixed fault rate: congestion "
        "concentrates, probe cost does not",
        columns=COLUMNS,
    )

    graph = FatTree(k)
    router = WaypointRouter()
    groups = [
        (
            skew,
            traffic_specs(
                graph,
                p=P_FIXED,
                router=router,
                demands=HotspotTraffic(commodities, skew),
                trials=trials,
                seed=derive_seed(seed, "e19", skew),
                key=("e19", skew),
            ),
        )
        for skew in skews
    ]
    records = runner.run_grouped(groups)

    for skew in skews:
        m = assemble_traffic(graph, P_FIXED, router, records[skew])
        table.add_row(
            k=k,
            p=P_FIXED,
            skew=skew,
            commodities=commodities,
            routability=m.routability,
            median_max_link_load=m.median_max_link_load(),
            mean_link_load=m.mean_link_load(),
            median_queries_per_delivered=m.median_queries_per_delivered(),
        )
    table.add_note(
        "Every delivered hotspot commodity crosses one of the "
        "hotspot's own ports, so median max link load climbs with "
        "skew toward delivered/deg — incast beats the fabric at its "
        "destination, not in the core — while probes per delivered "
        "commodity stay flat: path-finding cost is a percolation "
        "property of the fixed p, not of the traffic shape."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E19",
        title="Hotspot skew sweep (extension)",
        claim=(
            "At a fixed survival rate on a fat-tree, skewing a "
            "c-commodity demand toward one hotspot concentrates link "
            "load onto the hotspot's incident ports — max link load "
            "grows with skew — while probe cost per delivered "
            "commodity stays governed by the percolation alone."
        ),
        reference="Section 6 (extension); cf. E18, E15",
        run=run,
    )
)
