"""A1 — ablation: exact vs router-based conditioning.

Definition 2 conditions on ``{u ~ v}``.  The harness default
establishes that event with a router-independent cluster search
("exact"); a complete router's own success/failure is an alternative
("router").  With shared seeds the two must agree *exactly* on every
trial — this ablation certifies the conditioning machinery rather than
a paper claim.

Every trial of every (case, mode) pair is its own :class:`TrialSpec`;
both modes of a case share per-trial seeds, so their draws stay
identical however the work is scheduled.  Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.graphs.mesh import Mesh
from repro.routers.bfs import LocalBFSRouter
from repro.routers.waypoint import MeshWaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "graph",
    "p",
    "mode",
    "trials",
    "connected_trials",
    "mean_queries",
    "verdicts_agree",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    trials = pick(scale, tiny=10, small=30, medium=80)
    cases = [
        (Hypercube(pick(scale, tiny=5, small=7, medium=9)), 0.45, LocalBFSRouter()),
        (Mesh(2, pick(scale, tiny=7, small=10, medium=14)), 0.55, MeshWaypointRouter()),
    ]
    table = ResultTable(
        "A1",
        "Ablation: exact (cluster-BFS) vs router-based conditioning",
        columns=COLUMNS,
    )
    groups = [
        (
            (graph.name, mode),
            complexity_specs(
                graph,
                p=p,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "a1", graph.name),
                conditioning=mode,
                key=("a1", graph.name, mode),
            ),
        )
        for graph, p, router in cases
        for mode in ("exact", "router")
    ]
    records = runner.run_grouped(groups)
    for graph, p, router in cases:
        runs = {
            mode: assemble_measurement(
                graph, p, router, records[(graph.name, mode)]
            )
            for mode in ("exact", "router")
        }
        agree = [r.connected for r in runs["exact"].records] == [
            r.connected for r in runs["router"].records
        ]
        for mode, m in runs.items():
            mean_q = (
                m.query_summary().mean if m.successes() else float("nan")
            )
            table.add_row(
                graph=graph.name,
                p=p,
                mode=mode,
                trials=m.trials,
                connected_trials=m.connected_trials,
                mean_queries=mean_q,
                verdicts_agree=agree,
            )
    table.add_note(
        "verdicts_agree must be True: a complete router's failure is "
        "exactly the disconnection event the cluster search detects."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="A1",
        title="Conditioning method ablation",
        claim=(
            "Exact (router-independent) and router-based conditioning on "
            "{u ~ v} agree trial-by-trial for complete routers."
        ),
        reference="Definition 2 (methodology)",
        run=run,
    )
)
