"""E12 — Section 6's open question, probed empirically.

"Does there exist a constant-degree, log-diameter family where the
percolation and routing phase transitions coincide (away from 1)?"
The paper names de Bruijn, shuffle-exchange and butterfly graphs as
candidates.  For each family we scan ``p`` and record, on the same
grid: the giant-component fraction (structural transition) and the
conditioned local-routing cost as a fraction of all edges (routing
transition), using the complete directed-DFS router.

This does not settle the question — it charts where the two empirical
transitions sit at accessible sizes.

Work units: one :class:`TrialSpec` per family for the structural scan
(one multi-``p`` sweep over shared draws) plus one per routing trial of
every ``(family, p)`` point, all in a single batch across workers.
Both shapes are **workload-referenced**: the graphs — including the
explicit ``RandomMatchingCycle``, whose stored matching is the fattest
payload in the suite — ride in shared :class:`Workload`\\ s, so each
crosses to a worker once, not once per trial.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.butterfly import Butterfly
from repro.graphs.cycle_matching import RandomMatchingCycle
from repro.graphs.debruijn import DeBruijn
from repro.graphs.shuffle_exchange import ShuffleExchange
from repro.percolation.giant import giant_fraction_scan
from repro.routers.bfs import LocalBFSRouter
from repro.runtime import SerialRunner, TrialSpec, Workload
from repro.util.rng import derive_seed

COLUMNS = [
    "family",
    "vertices",
    "p",
    "giant_fraction",
    "pr_pair_connected",
    "median_frac_probed",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    order = pick(scale, tiny=4, small=6, medium=8)
    trials = pick(scale, tiny=5, small=10, medium=20)
    ps = pick(
        scale,
        tiny=[0.4, 0.7],
        small=[0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        medium=[0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85],
    )

    families = [
        DeBruijn(order),
        ShuffleExchange(order),
        Butterfly(max(2, order - 2)),
        # cycle + random matching (Bollobás–Chung): constant degree,
        # log diameter — the intro's "short paths hard to find" family
        RandomMatchingCycle(2**order, seed=derive_seed(seed, "e12-topology")),
    ]
    table = ResultTable(
        "E12",
        "Open question: percolation vs routing transitions on "
        "constant-degree log-diameter families",
        columns=COLUMNS,
    )
    router = LocalBFSRouter()
    scans = {
        graph.name: Workload(fn=giant_fraction_scan, args=(graph,))
        for graph in families
    }
    groups = [
        (
            ("giant", graph.name),
            [
                TrialSpec(
                    key=("e12-giant", graph.name),
                    kwargs={
                        "ps": tuple(ps),
                        "trials": trials,
                        "seed": derive_seed(seed, "e12-giant", graph.name),
                    },
                    workload=scans[graph.name],
                )
            ],
        )
        for graph in families
    ] + [
        (
            ("route", graph.name, p),
            complexity_specs(
                graph,
                p=p,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "e12-route", graph.name, p),
                key=("e12-route", graph.name, p),
            ),
        )
        for graph in families
        for p in ps
    ]
    measured = runner.run_grouped(groups)

    for graph in families:
        edges = graph.num_edges()
        giant_rows = measured[("giant", graph.name)][0]
        for p, giant_row in zip(ps, giant_rows):
            m = assemble_measurement(
                graph, p, router, measured[("route", graph.name, p)]
            )
            frac = (
                m.query_summary().median / edges
                if m.connected_trials and m.successes()
                else float("nan")
            )
            table.add_row(
                family=graph.name,
                vertices=graph.num_vertices(),
                p=p,
                giant_fraction=giant_row["giant_fraction"],
                pr_pair_connected=m.connection_rate,
                median_frac_probed=frac,
            )
    table.add_note(
        "A family answers the open question positively if "
        "median_frac_probed stays O(polylog/edges) down to the same p "
        "where giant_fraction vanishes.  BFS as the router gives an upper "
        "bound on the probed fraction; constant-degree graphs make "
        "BFS-within-the-cluster cheap, unlike the hypercube."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E12",
        title="Open question: de Bruijn / shuffle-exchange / butterfly",
        claim=(
            "Open: is there a constant-degree, log-diameter family whose "
            "percolation and routing transitions coincide away from 1? "
            "(Charted empirically, not settled.)"
        ),
        reference="Section 6",
        run=run,
    )
)
