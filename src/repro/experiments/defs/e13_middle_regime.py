"""E13 (extension) — the "middle regime" of the hypercube on one axis.

The paper's punchline (Section 1.3): for ``1/n ≪ p ≪ n^{-1/2}`` the
giant component of ``H_{n,p}`` exists and *shares structural properties
of the hypercube* — poly(n) diameter, comparable expansion — yet "the
ability to find short paths is lost".  This experiment lines up, for a
sweep of α at fixed n:

* the giant-component fraction (structure exists),
* a 2-sweep lower bound on the giant's diameter (structure is *small*
  — polynomial, not exponential, in n),
* the conditioned routing cost of a complete local router (finding
  paths is nevertheless expensive past α = 1/2).

Each α of the sweep — structural scan plus both routing measurements —
is one :class:`TrialSpec`, the heaviest unit in the suite.  Its arguments are plain scalars, so the unit stays self-contained:
the heavy objects are built inside the worker, and there is no
shared payload to ship.
"""

from __future__ import annotations

from repro.core.complexity import measure_complexity
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.percolation.cluster import approx_cluster_diameter, largest_component
from repro.percolation.models import TablePercolation
from repro.routers.bfs import BidirectionalBFSRouter
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner, TrialSpec
from repro.util.rng import derive_seed
from repro.util.stats import mean_ci

COLUMNS = [
    "n",
    "alpha",
    "p",
    "giant_fraction",
    "giant_diameter_lb",
    "diameter_over_n",
    "median_frac_probed",
    "oracle_frac_probed",
]


def _alpha_point(n: int, alpha: float, trials: int, master_seed: int):
    """One full row of the α sweep (structure + local + oracle routing).

    Receives the *master* seed and derives the same per-measurement
    keys the pre-runner code used, keeping recorded tables
    bit-identical across the refactor.
    """
    graph = Hypercube(n)
    edges = graph.num_edges()
    p = n**-alpha
    fractions = []
    diameters = []
    for t in range(trials):
        model = TablePercolation(
            graph, p, seed=derive_seed(master_seed, "e13-struct", alpha, t)
        )
        giant = largest_component(model)
        fractions.append(len(giant) / graph.num_vertices())
        if len(giant) > 1:
            anchor = next(iter(giant))
            diameters.append(approx_cluster_diameter(model, anchor, sweeps=2))
    m = measure_complexity(
        graph,
        p=p,
        router=WaypointRouter(),
        trials=trials,
        seed=derive_seed(master_seed, "e13-route", alpha),
    )
    frac_probed = (
        m.query_summary().median / edges
        if m.connected_trials and m.successes()
        else float("nan")
    )
    # Section 6, second open question: does *oracle* access help in
    # the middle regime?  (Conjectured: no.)
    m_oracle = measure_complexity(
        graph,
        p=p,
        router=BidirectionalBFSRouter(),
        trials=trials,
        seed=derive_seed(master_seed, "e13-route", alpha),  # same draws
    )
    oracle_frac = (
        m_oracle.query_summary().median / edges
        if m_oracle.connected_trials and m_oracle.successes()
        else float("nan")
    )
    giant_mean, _, _ = mean_ci(fractions)
    diam_mean = mean_ci(diameters)[0] if diameters else float("nan")
    return {
        "n": n,
        "alpha": alpha,
        "p": p,
        "giant_fraction": giant_mean,
        "giant_diameter_lb": diam_mean,
        "diameter_over_n": diam_mean / n,
        "median_frac_probed": frac_probed,
        "oracle_frac_probed": oracle_frac,
    }


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    n = pick(scale, tiny=7, small=10, medium=12)
    alphas = pick(
        scale,
        tiny=[0.3, 0.7],
        small=[0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        medium=[0.3, 0.4, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9],
    )
    trials = pick(scale, tiny=4, small=8, medium=16)

    table = ResultTable(
        "E13",
        "Hypercube middle regime: giant exists with poly(n) diameter, "
        "yet routing turns exhaustive past alpha = 1/2",
        columns=COLUMNS,
    )
    specs = [
        TrialSpec(
            key=("e13", alpha),
            fn=_alpha_point,
            args=(n, alpha, trials, seed),
        )
        for alpha in alphas
    ]
    for row in runner.run_values(specs):
        table.add_row(**row)
    table.add_note(
        "middle regime = rows with 0.5 < alpha < 1: giant_fraction stays "
        "macroscopic, diameter_over_n stays a small polynomial factor, "
        "but median_frac_probed approaches 1 — connectivity without "
        "routability."
    )
    table.add_note(
        "oracle_frac_probed charts Section 6's second open question "
        "(is oracle routing also exponential for 1/n << p << n^-1/2?). "
        "Bidirectional BFS pays the volume of two meeting balls: a large "
        "fraction at high p (dense middle layers), a smaller fraction "
        "deeper in the middle regime — but still far above poly(n) "
        "probes in absolute terms. A verdict on the conjecture needs an "
        "n-sweep at fixed alpha, not a p-sweep at fixed n."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E13",
        title="Hypercube middle regime (extension)",
        claim=(
            "For 1/n << p << n^-1/2 the giant component of H_{n,p} has "
            "poly(n) diameter and macroscopic size, yet local routing "
            "must probe nearly everything — structure without "
            "searchability."
        ),
        reference="Section 1.3 discussion around Theorem 3 (extension)",
        run=run,
    )
)
