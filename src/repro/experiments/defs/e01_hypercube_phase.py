"""E1 — the hypercube routing-complexity phase transition (Theorem 3).

Sweep ``α`` at fixed ``n`` with ``p = n^{-α}`` and measure the query
cost of local routing between antipodal vertices, conditioned on them
being connected.  The paper predicts poly(n) probes for ``α < 1/2`` and
``2^{Ω(n^β)}`` probes for ``α > 1/2`` — at finite ``n`` this appears as
the probed *fraction of all edges* jumping from ≪1 to ≈1 around
``α = 1/2``.

Routers measured: the unbounded waypoint router (the paper's Theorem
3(ii) algorithm made complete) and target-directed DFS (a natural local
strategy).  Both are complete, so conditioning is exact and success is
guaranteed; the complexity is the whole story.

Every *trial* of every ``(n, α, router)`` sweep point is its own
:class:`TrialSpec` (via :func:`repro.core.complexity.complexity_specs`),
so even a single large-``n`` point fans out across workers while
staying bit-identical to the serial run — each trial carries its own
derived seed.  Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.analysis.phase_transition import sharpest_rise
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.routers.dfs import DirectedDFSRouter
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "n",
    "alpha",
    "p",
    "router",
    "connected_trials",
    "median_queries",
    "mean_queries",
    "frac_edges_probed",
]


def run(
    scale: str,
    seed: int,
    runner=None,
    *,
    ns: list[int] | None = None,
    alphas: list[float] | None = None,
    trials: int | None = None,
) -> ResultTable:
    """Sweep (n, alpha, router) points; one TrialSpec per trial.

    The keyword-only ``ns`` / ``alphas`` / ``trials`` overrides replace
    the scale's sweep lists for partial or extended sweeps (the
    experiment service submits them); defaults leave the scale presets
    — and the table bytes — untouched.  Per-point seeds derive from
    ``(seed, "e1", n, alpha, router)`` only, so a point computes the
    same trials no matter which sweep asked for it.
    """
    runner = runner if runner is not None else SerialRunner()
    if ns is None:
        ns = pick(scale, tiny=[6], small=[8, 10], medium=[10, 12])
    if alphas is None:
        alphas = pick(
            scale,
            tiny=[0.3, 0.7],
            small=[0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            medium=[0.15, 0.25, 0.35, 0.45, 0.5, 0.55, 0.65, 0.75, 0.85],
        )
    if trials is None:
        trials = pick(scale, tiny=6, small=14, medium=30)

    table = ResultTable(
        "E1",
        "Hypercube routing complexity across alpha (p = n^-alpha)",
        columns=COLUMNS,
    )
    router_classes = [WaypointRouter, DirectedDFSRouter]
    router_names = {cls: cls().name for cls in router_classes}

    points = [
        (n, alpha, router_cls)
        for n in ns
        for alpha in alphas
        for router_cls in router_classes
    ]
    groups = [
        (
            (n, alpha, router_names[router_cls]),
            complexity_specs(
                Hypercube(n),
                p=n**-alpha,
                router=router_cls(),
                trials=trials,
                seed=derive_seed(
                    seed, "e1", n, alpha, router_names[router_cls]
                ),
                key=("e1", n, alpha, router_names[router_cls]),
            ),
        )
        for n, alpha, router_cls in points
    ]
    records = runner.run_grouped(groups)

    transition_data: dict[str, list[tuple[float, float]]] = {}
    for n in ns:
        edges = Hypercube(n).num_edges()
        for alpha in alphas:
            for router_cls in router_classes:
                name = router_names[router_cls]
                m = assemble_measurement(
                    Hypercube(n),
                    n**-alpha,
                    router_cls(),
                    records[(n, alpha, name)],
                )
                if not m.connected_trials:
                    table.add_row(
                        n=n,
                        alpha=alpha,
                        p=n**-alpha,
                        router=name,
                        connected_trials=0,
                        median_queries=float("nan"),
                        mean_queries=float("nan"),
                        frac_edges_probed=float("nan"),
                    )
                    continue
                summary = m.query_summary()
                frac = summary.median / edges
                table.add_row(
                    n=n,
                    alpha=alpha,
                    p=n**-alpha,
                    router=name,
                    connected_trials=m.connected_trials,
                    median_queries=summary.median,
                    mean_queries=summary.mean,
                    frac_edges_probed=frac,
                )
                transition_data.setdefault(f"n={n},{name}", []).append(
                    (alpha, frac)
                )

    for label, pts in transition_data.items():
        if len(pts) >= 2:
            xs = [a for a, _ in pts]
            ys = [f for _, f in pts]
            table.add_note(
                f"{label}: probed-fraction rises fastest near alpha = "
                f"{sharpest_rise(xs, ys):.2f} (paper: 0.5)"
            )
    return table


register(
    ExperimentSpec(
        experiment_id="E1",
        title="Hypercube routing phase transition",
        claim=(
            "Routing complexity on H_{n,p} with p=n^-alpha transitions from "
            "poly(n) to exponential at alpha = 1/2 — not at the giant-"
            "component threshold alpha = 1."
        ),
        reference="Theorem 3",
        run=run,
    )
)
