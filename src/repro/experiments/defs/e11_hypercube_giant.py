"""E11 — the hypercube's structural transitions, for context.

Places the paper's routing transition (``p = n^{-1/2}``, E1) on the
same axis as the classical structural ones it *doesn't* coincide with:

* giant component at ``p ≈ 1/n`` (Ajtai–Komlós–Szemerédi);
* full connectivity at ``p = 1/2`` (Erdős–Spencer).

The punchline of the paper is precisely that these three thresholds are
distinct: a giant component with poly(n) diameter exists for
``1/n ≪ p ≪ n^{-1/2}``, yet no local router can find paths efficiently.

The two scans of each ``n`` (giant fraction, full connectivity) are
independent :class:`TrialSpec` units, so they parallelise across
dimensions and sections.  Its arguments are plain scalars, so the unit stays self-contained:
the heavy objects are built inside the worker, and there is no
shared payload to ship.
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.percolation.giant import full_connectivity_scan, giant_fraction_scan
from repro.percolation.thresholds import (
    hypercube_connectivity_threshold,
    hypercube_giant_threshold,
    hypercube_routing_threshold,
)
from repro.runtime import SerialRunner, TrialSpec
from repro.util.rng import derive_seed

COLUMNS = ["section", "n", "p", "p_times_n", "value", "ci_lo", "ci_hi"]


def _giant_scan(n: int, trials: int, seed: int):
    """Giant-component fraction rows for one dimension."""
    base = hypercube_giant_threshold(n)
    ps = [0.5 * base, base, 1.5 * base, 2 * base, 4 * base]
    rows = giant_fraction_scan(Hypercube(n), ps=ps, trials=trials, seed=seed)
    return [
        {
            "section": "giant_fraction",
            "n": n,
            "p": row["p"],
            "p_times_n": row["p"] * n,
            "value": row["giant_fraction"],
            "ci_lo": row["ci_lo"],
            "ci_hi": row["ci_hi"],
        }
        for row in rows
    ]


def _connectivity_scan(n: int, trials: int, seed: int):
    """Pr[connected] rows for one dimension."""
    ps = [0.35, 0.45, 0.5, 0.55, 0.65]
    rows = full_connectivity_scan(
        Hypercube(n), ps=ps, trials=trials, seed=seed
    )
    return [
        {
            "section": "pr_connected",
            "n": n,
            "p": row["p"],
            "p_times_n": row["p"] * n,
            "value": row["pr_connected"],
            "ci_lo": row["ci_lo"],
            "ci_hi": row["ci_hi"],
        }
        for row in rows
    ]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    ns = pick(scale, tiny=[8], small=[10, 12], medium=[12, 14])
    trials = pick(scale, tiny=5, small=10, medium=20)

    table = ResultTable(
        "E11",
        "Hypercube structural thresholds: giant (~1/n) and "
        "connectivity (1/2) vs the routing transition (n^-1/2)",
        columns=COLUMNS,
    )
    sections = (
        ("giant", _giant_scan, "e11-giant"),
        ("conn", _connectivity_scan, "e11-conn"),
    )
    specs = [
        TrialSpec(
            key=("e11", section, n),
            fn=fn,
            args=(n, trials, derive_seed(seed, seed_tag, n)),
        )
        for n in ns
        for section, fn, seed_tag in sections
    ]

    scans = {result.key: result.value for result in runner.run(specs)}
    for n in ns:
        for section, _, _ in sections:
            for row in scans[("e11", section, n)]:
                table.add_row(**row)
        base = hypercube_giant_threshold(n)
        table.add_note(
            f"n={n}: giant threshold 1/n = {base:.4f}; routing threshold "
            f"n^-0.5 = {hypercube_routing_threshold(n):.4f}; connectivity "
            f"threshold = {hypercube_connectivity_threshold():.2f} — three "
            "distinct transitions."
        )
    return table


register(
    ExperimentSpec(
        experiment_id="E11",
        title="Hypercube structural vs routing thresholds",
        claim=(
            "The routing transition (n^-1/2) lies strictly between the "
            "giant-component threshold (1/n) and the connectivity "
            "threshold (1/2): connectivity does not imply routability."
        ),
        reference="Section 1.2/1.3 (AKS, Erdos-Spencer) + Theorem 3",
        run=run,
    )
)
