"""E11 — the hypercube's structural transitions, for context.

Places the paper's routing transition (``p = n^{-1/2}``, E1) on the
same axis as the classical structural ones it *doesn't* coincide with:

* giant component at ``p ≈ 1/n`` (Ajtai–Komlós–Szemerédi);
* full connectivity at ``p = 1/2`` (Erdős–Spencer).

The punchline of the paper is precisely that these three thresholds are
distinct: a giant component with poly(n) diameter exists for
``1/n ≪ p ≪ n^{-1/2}``, yet no local router can find paths efficiently.
"""

from __future__ import annotations

from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.percolation.giant import full_connectivity_scan, giant_fraction_scan
from repro.percolation.thresholds import (
    hypercube_connectivity_threshold,
    hypercube_giant_threshold,
    hypercube_routing_threshold,
)
from repro.util.rng import derive_seed

COLUMNS = ["section", "n", "p", "p_times_n", "value", "ci_lo", "ci_hi"]


def run(scale: str, seed: int) -> ResultTable:
    ns = pick(scale, tiny=[8], small=[10, 12], medium=[12, 14])
    trials = pick(scale, tiny=5, small=10, medium=20)

    table = ResultTable(
        "E11",
        "Hypercube structural thresholds: giant (~1/n) and "
        "connectivity (1/2) vs the routing transition (n^-1/2)",
        columns=COLUMNS,
    )
    for n in ns:
        graph = Hypercube(n)
        base = hypercube_giant_threshold(n)
        giant_ps = [0.5 * base, base, 1.5 * base, 2 * base, 4 * base]
        rows = giant_fraction_scan(
            graph,
            ps=giant_ps,
            trials=trials,
            seed=derive_seed(seed, "e11-giant", n),
        )
        for row in rows:
            table.add_row(
                section="giant_fraction",
                n=n,
                p=row["p"],
                p_times_n=row["p"] * n,
                value=row["giant_fraction"],
                ci_lo=row["ci_lo"],
                ci_hi=row["ci_hi"],
            )
        conn_ps = [0.35, 0.45, 0.5, 0.55, 0.65]
        rows = full_connectivity_scan(
            graph,
            ps=conn_ps,
            trials=trials,
            seed=derive_seed(seed, "e11-conn", n),
        )
        for row in rows:
            table.add_row(
                section="pr_connected",
                n=n,
                p=row["p"],
                p_times_n=row["p"] * n,
                value=row["pr_connected"],
                ci_lo=row["ci_lo"],
                ci_hi=row["ci_hi"],
            )
        table.add_note(
            f"n={n}: giant threshold 1/n = {base:.4f}; routing threshold "
            f"n^-0.5 = {hypercube_routing_threshold(n):.4f}; connectivity "
            f"threshold = {hypercube_connectivity_threshold():.2f} — three "
            "distinct transitions."
        )
    return table


register(
    ExperimentSpec(
        experiment_id="E11",
        title="Hypercube structural vs routing thresholds",
        claim=(
            "The routing transition (n^-1/2) lies strictly between the "
            "giant-component threshold (1/n) and the connectivity "
            "threshold (1/2): connectivity does not imply routability."
        ),
        reference="Section 1.2/1.3 (AKS, Erdos-Spencer) + Theorem 3",
        run=run,
    )
)
