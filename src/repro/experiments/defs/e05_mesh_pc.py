"""E5 / E5b — behaviour of mesh routing across ``p_c``, and the
chemical-distance input to Theorem 4 (Antal–Pisztora, Lemma 8).

E5: fixed 2-D box, ``p`` swept through ``p_c = 1/2``.  Below the
threshold the pair connects with vanishing probability and routing
degenerates; above it the cost per unit distance settles to a constant
that shrinks with ``p`` — showing Theorem 4's "whenever the giant
component exists" is sharp.

E5b: in the supercritical phase, sample connected centred pairs and
record ``D(x,y)/d(x,y)`` (chemical over euclidean-lattice distance).
Lemma 8 asserts linear scaling with an exponential tail; we report the
mean ratio ρ(p) and the fitted tail rate.

Spec emission: the routing section emits **per-trial,
workload-referenced** :class:`TrialSpec` units via ``complexity_specs``
(one shared Workload per ``p``, slim ``(trial, seed)`` tails with the
same per-trial seed derivation as before), so a single sweep point fans
out across workers and its chunks execute through the vectorized mesh
kernel.  The chemical section stays **self-contained** — one spec per
``p`` whose arguments are plain scalars — because its unit is a whole
chemical-distance sample, not a routing trial.
"""

from __future__ import annotations

from repro.analysis.phase_transition import exponential_tail_rate
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.mesh import Mesh
from repro.percolation.cluster import chemical_distance
from repro.percolation.models import TablePercolation
from repro.routers.waypoint import MeshWaypointRouter
from repro.runtime import SerialRunner, TrialSpec
from repro.util.rng import derive_seed
from repro.util.stats import mean_ci

COLUMNS = [
    "section",
    "p",
    "pr_connected",
    "median_queries",
    "queries_per_distance",
    "ratio_mean",
    "tail_rate",
]


def _geometry(side: int):
    """The fixed near-corner pair and its lattice distance."""
    graph = Mesh(2, side)
    distance = 2 * (side - 1) - 4  # near-corner pair, fixed across p
    return graph, distance, graph.centered_pair_at_distance(distance)


def _routing_cells(m, distance: float) -> dict:
    """Fold one routing measurement into a table row (plain cells)."""
    if m.connected_trials and m.successes():
        summary = m.query_summary()
        median_q = summary.median
        per_dist = summary.median / distance
    else:
        median_q = float("nan")
        per_dist = float("nan")
    return {
        "section": "routing",
        "p": m.p,
        "pr_connected": m.connection_rate,
        "median_queries": median_q,
        "queries_per_distance": per_dist,
        "ratio_mean": float("nan"),
        "tail_rate": float("nan"),
    }


def _chemical_point(side: int, p: float, trials: int, master_seed: int):
    """One chemical-distance row; ``None`` when too few connections.

    Receives the *master* seed and derives per-trial seeds with the
    same ``("e5b", p, t)`` key the pre-runner code used, keeping the
    recorded tables bit-identical across the refactor.
    """
    graph, distance, pair = _geometry(side)
    ratios = []
    for t in range(trials):
        model = TablePercolation(
            graph, p, seed=derive_seed(master_seed, "e5b", p, t)
        )
        dist = chemical_distance(model, *pair)
        if dist is not None:
            ratios.append(dist / distance)
    if len(ratios) < 3:
        return None
    mean, _, _ = mean_ci(ratios)
    try:
        rate = exponential_tail_rate(ratios, tail_from=mean)
    except ValueError:
        rate = float("nan")
    return {
        "section": "chemical",
        "p": p,
        "pr_connected": len(ratios) / trials,
        "median_queries": float("nan"),
        "queries_per_distance": float("nan"),
        "ratio_mean": mean,
        "tail_rate": rate,
    }


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    side = pick(scale, tiny=10, small=16, medium=24)
    trials = pick(scale, tiny=10, small=24, medium=60)
    ps_routing = pick(
        scale,
        tiny=[0.4, 0.7],
        small=[0.35, 0.45, 0.5, 0.55, 0.65, 0.8],
        medium=[0.35, 0.4, 0.45, 0.5, 0.525, 0.55, 0.6, 0.7, 0.8, 0.9],
    )
    ps_chemical = pick(
        scale, tiny=[0.7], small=[0.6, 0.8], medium=[0.55, 0.65, 0.75, 0.9]
    )

    table = ResultTable(
        "E5",
        "2-D mesh across p_c: routing degenerates below, O(n) above; "
        "chemical distance is linear with exponential tail above",
        columns=COLUMNS,
    )

    graph, distance, pair = _geometry(side)
    router = MeshWaypointRouter()
    groups = [
        (
            ("routing", p),
            complexity_specs(
                graph,
                p=p,
                router=router,
                pair=pair,
                trials=trials,
                seed=derive_seed(seed, "e5", p),
                key=("e5", "routing", p),
            ),
        )
        for p in ps_routing
    ] + [
        (
            ("chemical", p),
            [
                TrialSpec(
                    key=("e5", "chemical", p),
                    fn=_chemical_point,
                    args=(side, p, trials, seed),
                )
            ],
        )
        for p in ps_chemical
    ]
    values = runner.run_grouped(groups)
    for p in ps_routing:
        m = assemble_measurement(
            graph, p, router, values[("routing", p)], pair=pair
        )
        table.add_row(**_routing_cells(m, distance))
    for p in ps_chemical:
        cells = values[("chemical", p)][0]
        if cells is not None:
            table.add_row(**cells)

    table.add_note(
        "routing: below p_c = 0.5 pr_connected collapses; above it "
        "queries_per_distance is a finite constant decreasing in p."
    )
    table.add_note(
        "chemical: ratio_mean is the Antal-Pisztora rho(p) -> 1 as p -> 1; "
        "positive tail_rate = exponential concentration (Lemma 8)."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E5",
        title="Mesh behaviour across p_c + chemical distance",
        claim=(
            "Theorem 4 is sharp at p_c: below it routing is impossible "
            "(no giant component), above it per-distance cost is O(1); "
            "chemical distance D(x,y) <= rho*d(x,y) with exponential tail."
        ),
        reference="Theorem 4, Lemma 8 (Antal-Pisztora)",
        run=run,
    )
)
