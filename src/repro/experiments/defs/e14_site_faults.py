"""E14 (extension) — does the routing transition survive node faults?

The paper models *edge* failures; its related work (Håstad–Leighton–
Newman, Cole–Maggs–Sitaraman) mostly models *node* failures.  This
extension reruns the E1 sweep under site percolation (vertex up with
probability ``p``, endpoints pinned up) and compares the routing-cost
curve against the edge-failure one at the same nominal ``p``.

Heuristic expectation: a vertex failure kills all ``n`` incident edges
at once, so site faults at survival ``p`` behave roughly like edge
faults at ``p²`` near the transition (each edge needs both endpoints);
the transition should appear near ``α = 1/4`` in site terms — earlier,
not absent.

Spec emission: each ``(α, fault model)`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via ``complexity_specs``
— one shared Workload per point (graph, router, factory), slim
``(trial, seed)`` tails — so single points fan out across workers and
chunks execute through the vectorized kernel: the edge points ride the
built-in ``TablePercolation`` mask kernel, and the site points opt in
below by registering a site-mask kernel for ``_site_factory`` (pinned
endpoints included), keeping tables byte-identical either way.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.kernels import register_model_kernel, site_model_kernel
from repro.percolation.site import SitePercolation
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "n",
    "alpha",
    "p",
    "fault_model",
    "connected_trials",
    "median_frac_probed",
]


def _site_factory(graph, p, seed):
    return SitePercolation(
        graph, p, seed=seed, pinned=graph.canonical_pair()
    )


def _pinned_pair(graph):
    """The vertices ``_site_factory`` exempts from failure."""
    return graph.canonical_pair()


# Opt the site points into the vectorized chunk kernel: the site-mask
# kernel must pin exactly what the factory pins, or the kernel parity
# gate (tests/kernels/) fails.  Registration runs wherever this module
# imports — including workers that learn of the workload by unpickling
# `_site_factory`, which triggers this import.
register_model_kernel(_site_factory, site_model_kernel(_pinned_pair))


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    n = pick(scale, tiny=7, small=10, medium=12)
    alphas = pick(
        scale,
        tiny=[0.2, 0.5],
        small=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        medium=[0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7],
    )
    trials = pick(scale, tiny=5, small=10, medium=20)

    table = ResultTable(
        "E14",
        "Hypercube routing under node faults vs link faults "
        "(site vs bond percolation)",
        columns=COLUMNS,
    )

    graph = Hypercube(n)
    router = WaypointRouter()
    groups = [
        (
            (alpha, fault_model),
            complexity_specs(
                graph,
                p=n**-alpha,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "e14", alpha, fault_model),
                model_factory=(
                    _site_factory if fault_model == "site" else None
                ),
                key=("e14", alpha, fault_model),
            ),
        )
        for alpha in alphas
        for fault_model in ("edge", "site")
    ]
    records = runner.run_grouped(groups)

    for alpha in alphas:
        for fault_model in ("edge", "site"):
            m = assemble_measurement(
                graph, n**-alpha, router, records[(alpha, fault_model)]
            )
            frac = (
                m.query_summary().median / graph.num_edges()
                if m.connected_trials and m.successes()
                else float("nan")
            )
            table.add_row(
                n=n,
                alpha=alpha,
                p=n**-alpha,
                fault_model=fault_model,
                connected_trials=m.connected_trials,
                median_frac_probed=frac,
            )
    table.add_note(
        "At equal nominal p, site faults hit harder (an edge needs both "
        "endpoints): the site curve blows up at smaller alpha, consistent "
        "with the p^2 heuristic (transition near alpha = 1/4 in site "
        "terms). The phase-transition *phenomenon* survives node faults."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E14",
        title="Site-fault routing transition (extension)",
        claim=(
            "The routing phase transition persists under node failures; "
            "site survival p acts like edge survival ~p^2, shifting the "
            "transition to alpha ~ 1/4."
        ),
        reference="Related work (Hastad et al.) + Theorem 3 (extension)",
        run=run,
    )
)
