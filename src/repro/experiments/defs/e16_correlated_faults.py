"""E16 (extension) — does fault *correlation* alone cost routing?

E14 showed node faults bite harder than edge faults at equal nominal
``p``.  This extension holds the fault *mass* fixed and sweeps the
fault *shape*: on the hypercube, outage epicenters land at a fixed
density and each grows into a graph-metric ball whose expected radius
is controlled by ``spread``
(:class:`~repro.percolation.faults.CorrelatedFaultPercolation`,
links kept at ``p=1`` so node outages are the only faults).

``spread = 0`` is the controlled baseline — every ball is a single
vertex, i.e. i.i.d. node faults at exactly the epicenter density — and
the radius draws are coupled across the sweep (one uniform per
epicenter, inverted), so raising ``spread`` grows the *same* outages
into clusters rather than resampling them.  The ``mean_dead_frac``
column reports the realised fault mass per point (recomputed from the
per-trial seeds, bit-for-bit the models the trials used) so the table
itself shows how much of the degradation is extra dead mass from the
growing balls versus the clustering of that mass.

Spec emission: each ``spread`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via ``complexity_specs``
— one shared Workload per point, slim ``(trial, seed)`` tails.  The
factory is deliberately *not* registered with the kernel seam, so the
point runs via the per-trial fallback and ``repro info E16`` audits it
as such (the kernel-audit regression suite keys off this def).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.percolation.faults import CorrelatedFaultPercolation
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "n",
    "epicenter_rate",
    "spread",
    "mean_dead_frac",
    "connected_trials",
    "median_frac_probed",
]

#: Outage epicenter density, fixed across the sweep.
EPICENTER_RATE = 0.04


@dataclass(frozen=True)
class _OutageFactory:
    """Pure node-outage clusters: links kept, probe endpoints pinned."""

    epicenter_rate: float
    spread: float

    def __call__(self, graph, p, seed):
        return CorrelatedFaultPercolation(
            graph,
            1.0,
            seed=seed,
            epicenter_rate=self.epicenter_rate,
            spread=self.spread,
            pinned=graph.canonical_pair(),
        )


def _mean_dead_frac(graph, factory, trials: int, seed: int) -> float:
    """Realised dead fraction, averaged over the point's trials.

    Rebuilds each trial's model from the same derived seed the runner
    used (``derive_seed(seed, "complexity", t)`` — the
    ``complexity_specs`` derivation), so the number reported is the
    fault mass the trials actually routed through.
    """
    total = 0
    for t in range(trials):
        model = factory(graph, 1.0, derive_seed(seed, "complexity", t))
        total += len(model.dead_nodes())
    return total / (trials * graph.num_vertices())


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    n = pick(scale, tiny=6, small=9, medium=11)
    spreads = pick(
        scale,
        tiny=[0.0, 0.5],
        small=[0.0, 0.3, 0.5, 0.65],
        medium=[0.0, 0.2, 0.4, 0.55, 0.7],
    )
    trials = pick(scale, tiny=5, small=12, medium=20)

    table = ResultTable(
        "E16",
        "Hypercube routing under clustered node outages "
        "(fixed epicenter density, growing correlation)",
        columns=COLUMNS,
    )

    graph = Hypercube(n)
    router = WaypointRouter()
    factories = {
        spread: _OutageFactory(EPICENTER_RATE, spread)
        for spread in spreads
    }
    groups = [
        (
            spread,
            complexity_specs(
                graph,
                p=1.0,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "e16", spread),
                model_factory=factories[spread],
                key=("e16", spread),
            ),
        )
        for spread in spreads
    ]
    records = runner.run_grouped(groups)

    for spread in spreads:
        m = assemble_measurement(graph, 1.0, router, records[spread])
        frac = (
            m.query_summary().median / graph.num_edges()
            if m.connected_trials and m.successes()
            else float("nan")
        )
        table.add_row(
            n=n,
            epicenter_rate=EPICENTER_RATE,
            spread=spread,
            mean_dead_frac=_mean_dead_frac(
                graph,
                factories[spread],
                trials,
                derive_seed(seed, "e16", spread),
            ),
            connected_trials=m.connected_trials,
            median_frac_probed=frac,
        )
    table.add_note(
        "spread=0 is i.i.d. node faults at the epicenter density; the "
        "coupled radius draws mean each later row grows the same "
        "outages into balls.  Compare median_frac_probed against "
        "mean_dead_frac: clustered rows cost more routing per unit of "
        "dead mass, because a ball carves a void the router must "
        "circumnavigate while scattered faults are absorbed locally."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E16",
        title="Correlated outage clusters on the hypercube (extension)",
        claim=(
            "At fixed outage-epicenter density, growing the correlation "
            "radius degrades routing faster than the extra dead mass "
            "alone accounts for: clustered faults carve voids that "
            "cost the router more than scattered faults."
        ),
        reference="Section 6 (extension); cf. E14 node-fault baseline",
        run=run,
    )
)
