"""E8 — oracle routing on the double tree is O(n) (Theorem 9).

The mirror-pair oracle router's average complexity vs depth, for
``p > 1/√2``.  Expect linear growth (slope ≈ 1 in log-log), success
probability bounded away from zero independent of depth, and — combined
with E7 — an *exponential local-vs-oracle gap* on the same graph.

Every trial of every ``(p, depth)`` point is its own
:class:`TrialSpec`, so the sweep fans out across workers.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.analysis.phase_transition import scaling_exponent
from repro.analysis.theory import double_tree_connection_probability
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.double_tree import DoubleBinaryTree
from repro.routers.tree import MirrorPairOracleRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "p",
    "depth",
    "connected_trials",
    "mirror_success_rate",
    "theory_mirror_rate",
    "mean_queries",
    "queries_per_depth",
]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    ps = pick(scale, tiny=[0.85], small=[0.75, 0.85, 0.95], medium=[0.72, 0.8, 0.9])
    depths = pick(
        scale, tiny=[4, 8], small=[4, 8, 12], medium=[4, 8, 12, 16]
    )
    trials = pick(scale, tiny=15, small=40, medium=60)

    table = ResultTable(
        "E8",
        "Double-tree oracle (mirror-pair) routing vs depth (expect O(n))",
        columns=COLUMNS,
    )
    groups = [
        (
            (p, depth),
            complexity_specs(
                DoubleBinaryTree(depth),
                p=p,
                router=MirrorPairOracleRouter(),
                pair=DoubleBinaryTree(depth).roots(),
                trials=trials,
                seed=derive_seed(seed, "e8", p, depth),
                key=("e8", p, depth),
            ),
        )
        for p in ps
        for depth in depths
    ]
    records = runner.run_grouped(groups)
    for p in ps:
        points = []
        for depth in depths:
            graph = DoubleBinaryTree(depth)
            m = assemble_measurement(
                graph,
                p,
                MirrorPairOracleRouter(),
                records[(p, depth)],
                pair=graph.roots(),
            )
            if not m.connected_trials or not m.successes():
                continue
            mean_q = m.query_summary().mean
            # Pr[mirror path exists | u ~ v] >= Pr[mirror path] / Pr[u~v]:
            # both equal level_reach(2, p^2, depth) — mirror-pair openness
            # IS the connectivity event of Lemma 6, so the theory rate
            # conditional on u ~ v is c(p)/Pr[u~v] <= 1; report the
            # unconditional mirror-path probability for reference.
            table.add_row(
                p=p,
                depth=depth,
                connected_trials=m.connected_trials,
                mirror_success_rate=m.success_rate,
                theory_mirror_rate=double_tree_connection_probability(
                    p, depth
                ),
                mean_queries=mean_q,
                queries_per_depth=mean_q / depth,
            )
            points.append((depth, mean_q))
        if len(points) >= 3:
            fit = scaling_exponent([x for x, _ in points], [y for _, y in points])
            table.add_note(
                f"p={p}: queries ~ depth^{fit['exponent']:.2f} "
                f"(r²={fit['r2']:.3f}) — Theorem 9 predicts exponent 1 "
                "(average complexity c(p)·n)"
            )
    table.add_note(
        "Together with E7: oracle O(n) vs local ~p^-n on the same graph — "
        "an exponential separation between the two query models."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E8",
        title="Double-tree oracle routing is linear",
        claim=(
            "There is an oracle router between the roots of TT_n with "
            "average complexity c(p)·n for any p > 1/sqrt(2)."
        ),
        reference="Theorem 9",
        run=run,
    )
)
