"""A3 — ablation: what makes Theorem 11 fast, oracle access or policy?

Three routers on identical ``G(n, c/n)`` draws:

* the local target-first router (Theorem 10's Θ(n²));
* the *same* policy run with oracle access (no locality constraint);
* the bidirectional oracle router (Theorem 11's Θ(n^{3/2})).

Expected: the unidirectional oracle matches the local router's order —
oracle access alone buys nothing; bidirectional growth is the √n win.

Every trial of every (n, router) pair is its own :class:`TrialSpec`;
all three routers of a size share per-trial seeds — identical draws —
so the comparison is a true ablation under any scheduling.
Each spec is
**workload-referenced**: the point's shared context (graph, router,
pair) rides in one :class:`~repro.runtime.Workload`, shipped to a
worker once; the specs carry only their ``(trial, seed)`` tails.
"""

from __future__ import annotations

from repro.core.complexity import assemble_measurement, complexity_specs
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.complete import CompleteGraph
from repro.percolation.models import GnpPercolation
from repro.routers.gnp import (
    GnpBidirectionalRouter,
    GnpLocalRouter,
    GnpUnidirectionalRouter,
)
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = ["n", "c", "router", "connected_trials", "mean_queries", "vs_local"]


def _factory(graph, p, seed):
    return GnpPercolation(n=graph.num_vertices(), p=p, seed=seed)


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    c = 3.0
    ns = pick(scale, tiny=[96], small=[256, 512], medium=[256, 512, 1024])
    trials = pick(scale, tiny=8, small=14, medium=24)

    table = ResultTable(
        "A3",
        "Ablation: G(n,p) growth policies (local / unidirectional-oracle "
        "/ bidirectional-oracle)",
        columns=COLUMNS,
    )
    routers = [
        GnpLocalRouter(),
        GnpUnidirectionalRouter(),
        GnpBidirectionalRouter(),
    ]
    groups = [
        (
            (n, router.name),
            complexity_specs(
                CompleteGraph(n),
                p=c / n,
                router=router,
                trials=trials,
                seed=derive_seed(seed, "a3", n),  # same seeds per router
                model_factory=_factory,
                key=("a3", n, router.name),
            ),
        )
        for n in ns
        for router in routers
    ]
    records = runner.run_grouped(groups)
    for n in ns:
        graph = CompleteGraph(n)
        means = {}
        for router in routers:
            m = assemble_measurement(
                graph, c / n, router, records[(n, router.name)]
            )
            if not m.connected_trials:
                continue
            means[router.name] = m.query_summary().mean
        base = means.get("gnp-local")
        for name, mean_q in means.items():
            table.add_row(
                n=n,
                c=c,
                router=name,
                connected_trials=trials,
                mean_queries=mean_q,
                vs_local=(mean_q / base) if base else float("nan"),
            )
    table.add_note(
        "vs_local ≈ 1 for the unidirectional oracle (access alone does "
        "not help); vs_local ≈ n^-1/2 scale for bidirectional growth."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="A3",
        title="G(n,p) growth-policy ablation",
        claim=(
            "The sqrt(n) oracle advantage of Theorem 11 comes from "
            "bidirectional growth, not from oracle access per se."
        ),
        reference="Theorems 10–11 (design choice)",
        run=run,
    )
)
