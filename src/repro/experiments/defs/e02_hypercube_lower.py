"""E2 — the hypercube local lower bound (Theorem 3(i)).

Two artifacts per ``(n, α)`` with ``α > 1/2``:

1. the **Lemma 5 certificate** for ``S`` = radius-``l`` ball around the
   target (``l ≈ n^β``, ``β < α - 1/2``): Monte-Carlo ``η`` against the
   path-counting series bound, and the resulting floor on the queries
   any local router needs to succeed with probability 1/2;
2. measured CDF points of an actual local-router suite, which must stay
   below the certificate's bound curve.

Work units: one :class:`TrialSpec` per certificate estimation (its own
Monte-Carlo loop) plus one per routing *trial*, all submitted as a
single batch — certificates and router measurements of different sweep
points interleave freely across workers.  Routing trials are
**workload-referenced** (one shared :class:`~repro.runtime.Workload`
per point); certificate units are **self-contained** — plain scalars,
the hypercube built inside the worker.
"""

from __future__ import annotations

from repro.analysis.path_counting import open_walk_probability_bound
from repro.core.complexity import assemble_measurement, complexity_specs
from repro.core.lower_bounds import ball, estimate_certificate
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.hypercube import Hypercube
from repro.routers.dfs import DirectedDFSRouter
from repro.routers.waypoint import WaypointRouter
from repro.runtime import SerialRunner, TrialSpec
from repro.util.rng import derive_seed

COLUMNS = [
    "n",
    "alpha",
    "radius",
    "eta_empirical",
    "eta_theory",
    "pr_uv",
    "min_queries_p50",
    "router",
    "observed_cdf_at_t",
    "bound_at_t",
    "t",
]


def _ball_radius(n: int, alpha: float) -> int:
    # β < α - 1/2 ⇒ at these n the ball radius is 1–2.
    return max(1, round(n ** (alpha - 0.5) / 2))


def _certificate_point(n: int, alpha: float, cert_trials: int, seed: int):
    """Estimate one (n, alpha) Lemma 5 certificate (its own MC loop)."""
    graph = Hypercube(n)
    source, target = graph.canonical_pair()
    s = ball(graph, target, _ball_radius(n, alpha))
    return estimate_certificate(
        graph,
        n**-alpha,
        s=s,
        source=source,
        target=target,
        trials=cert_trials,
        seed=seed,
    )


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    ns = pick(scale, tiny=[6], small=[8, 10], medium=[10, 12])
    alphas = pick(scale, tiny=[0.7], small=[0.6, 0.7, 0.8], medium=[0.55, 0.65, 0.75, 0.85])
    cert_trials = pick(scale, tiny=80, small=300, medium=800)
    route_trials = pick(scale, tiny=6, small=14, medium=30)

    table = ResultTable(
        "E2",
        "Hypercube local lower bound: Lemma 5 certificate vs router suite",
        columns=COLUMNS,
    )
    routers = [WaypointRouter(), DirectedDFSRouter()]

    groups = [
        (
            ("cert", n, alpha),
            [
                TrialSpec(
                    key=("e2-cert", n, alpha),
                    fn=_certificate_point,
                    args=(
                        n,
                        alpha,
                        cert_trials,
                        derive_seed(seed, "e2-cert", n, alpha),
                    ),
                )
            ],
        )
        for n in ns
        for alpha in alphas
    ] + [
        (
            ("route", n, alpha, router.name),
            complexity_specs(
                Hypercube(n),
                p=n**-alpha,
                router=router,
                trials=route_trials,
                seed=derive_seed(seed, "e2-route", n, alpha, router.name),
                key=("e2-route", n, alpha, router.name),
            ),
        )
        for n in ns
        for alpha in alphas
        for router in routers
    ]
    measured = runner.run_grouped(groups)

    for n in ns:
        graph = Hypercube(n)
        for alpha in alphas:
            p = n**-alpha
            radius = _ball_radius(n, alpha)
            cert = measured[("cert", n, alpha)][0]
            eta_theory = open_walk_probability_bound(n, radius, p)
            t_star = cert.min_queries_for(0.5)
            for router in routers:
                m = assemble_measurement(
                    graph,
                    p,
                    router,
                    measured[("route", n, alpha, router.name)],
                )
                # compare CDFs at t = half the certificate's floor
                t = max(1, int(t_star / 2)) if t_star != float("inf") else 1
                observed = (
                    m.empirical_cdf([t])[0] if m.connected_trials else float("nan")
                )
                table.add_row(
                    n=n,
                    alpha=alpha,
                    radius=radius,
                    eta_empirical=cert.eta_max,
                    eta_theory=eta_theory,
                    pr_uv=cert.pr_uv,
                    min_queries_p50=t_star,
                    router=router.name,
                    observed_cdf_at_t=observed,
                    bound_at_t=cert.bound(t),
                    t=t,
                )
    table.add_note(
        "Lemma 5: Pr[X < t] <= (t*eta + Pr[(u~v) in S]) / Pr[u~v]; "
        "observed_cdf_at_t must not exceed bound_at_t (up to MC noise)."
    )
    table.add_note(
        "eta_empirical should be dominated by eta_theory (the paper's "
        "path-counting series bound)."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E2",
        title="Hypercube local routing lower bound",
        claim=(
            "For p = n^-alpha, alpha > 1/2+beta, every local router needs "
            "2^{Omega(n^beta)} probes w.h.p.; balls look like sparse trees "
            "and penetrating them through the boundary is exponentially rare."
        ),
        reference="Theorem 3(i), Lemma 5",
        run=run,
    )
)
