"""E6 — double-tree connectivity threshold at ``1/√2`` (Lemma 6).

Empirical root-to-root connection probability vs the *exact* recursion
(binary Galton–Watson survival to level ``n`` with edge probability
``p²``), across ``p`` and depth.  As depth grows the curve sharpens
into a step at ``1/√2 ≈ 0.7071``.

The empirical curve is computed via **coupled thresholds**
(:func:`repro.percolation.coupled.pair_threshold`): one union–find
sweep per trial yields the exact ``p`` at which the roots connect, so a
single pass evaluates ``Pr[x ~ y in TT_{n,p}]`` at *every* ``p``
simultaneously — equivalent to (and much cheaper than) per-``p``
Monte-Carlo with the same hash stream.  Each union–find sweep is one
:class:`TrialSpec`, using the same per-trial seed derivation as
``threshold_sample``, so depths fan out trial by trial.  Each spec is
**workload-referenced**: the depth's tree is frozen into one shared
:class:`Workload` and a spec ships only its derived seed — the graph
crosses to each worker once per depth.
"""

from __future__ import annotations

import math

from repro.analysis.theory import double_tree_connection_probability
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.double_tree import DoubleBinaryTree
from repro.percolation.coupled import pair_threshold
from repro.runtime import SerialRunner, TrialSpec, Workload
from repro.util.rng import derive_seed

COLUMNS = ["depth", "p", "pr_empirical", "pr_exact", "abs_error", "trials"]


def _root_threshold(graph: DoubleBinaryTree, trial_seed: int) -> float:
    """One coupled union-find sweep: exact root-connection p."""
    return pair_threshold(graph, trial_seed, *graph.roots())


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    depths = pick(scale, tiny=[3, 5], small=[4, 7, 10], medium=[4, 8, 12, 14])
    ps = pick(
        scale,
        tiny=[0.6, 0.75, 0.9],
        small=[0.55, 0.65, 0.7, 0.7071, 0.75, 0.85, 0.95],
        medium=[0.55, 0.6, 0.65, 0.68, 0.7071, 0.72, 0.75, 0.8, 0.9, 0.95],
    )
    trials = pick(scale, tiny=60, small=200, medium=300)

    table = ResultTable(
        "E6",
        "Double-tree root connectivity vs exact GW recursion "
        "(threshold 1/sqrt(2) ~ 0.7071)",
        columns=COLUMNS,
    )
    sweeps = {
        depth: Workload(
            fn=_root_threshold, args=(DoubleBinaryTree(depth),)
        )
        for depth in depths
    }
    groups = [
        (
            depth,
            [
                # Same per-trial derivation as threshold_sample, so the
                # recorded curves are bit-identical to the pre-runner code.
                TrialSpec(
                    key=("e6", depth, t),
                    args=(
                        derive_seed(
                            derive_seed(seed, "e6", depth), "coupled", t
                        ),
                    ),
                    workload=sweeps[depth],
                )
                for t in range(trials)
            ],
        )
        for depth in depths
    ]
    sampled = runner.run_grouped(groups)

    for depth in depths:
        thresholds = sorted(sampled[depth])
        for p in ps:
            empirical = sum(1 for t in thresholds if t < p) / trials
            exact = double_tree_connection_probability(p, depth)
            table.add_row(
                depth=depth,
                p=p,
                pr_empirical=empirical,
                pr_exact=exact,
                abs_error=abs(empirical - exact),
                trials=trials,
            )
    worst = max(table.column("abs_error"))
    se = 3 / math.sqrt(trials)
    table.add_note(
        f"max |empirical - exact| = {worst:.3f} "
        f"(3/sqrt(trials) = {se:.3f}); the recursion is exact, deviations "
        "are pure sampling noise."
    )
    table.add_note(
        "Lemma 6: as depth grows, Pr[x ~ y] -> 0 for p < 1/sqrt(2) and "
        "stays bounded away from 0 for p > 1/sqrt(2)."
    )
    table.add_note(
        "empirical curve evaluated from coupled per-trial connection "
        "thresholds (one union-find sweep per trial covers all p)."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E6",
        title="Double-tree connectivity threshold",
        claim=(
            "In TT_n the roots connect with probability bounded away from "
            "0 iff p > 1/sqrt(2); equivalently binary GW survival with "
            "edge probability p^2."
        ),
        reference="Lemma 6",
        run=run,
    )
)
