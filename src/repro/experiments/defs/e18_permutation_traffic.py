"""E18 (extension) — permutation traffic vs fault rate.

The paper measures one probe pair per percolated graph; real networks
carry many flows at once.  This extension offers a random
*permutation* demand — ``c`` distinct sources, each routing to a
distinct target (:class:`~repro.core.traffic.PermutationTraffic`) — on
a percolated hypercube and fat-tree, and sweeps the survival
probability ``p``:

* **routability** — the pooled fraction of offered commodities
  delivered — traces the same phase transition E1 sees for a single
  pair, but pooled over commodities it is a much lower-variance
  estimator of the same curve;
* **full delivery** (every commodity of a trial delivered) decays like
  the ``c``-th power of per-pair routability while commodity fates are
  near-independent — fat-tree uplinks, shared by design, break that
  independence first;
* **congestion** — max/mean link load over delivered geodesic-waypoint
  paths — shows the cost of the detours: as ``p`` drops toward the
  threshold, surviving links carry the traffic of their dead
  neighbours, so the max-load curve *rises* while routability still
  looks healthy.

Spec emission: each ``(graph, p)`` point emits **per-trial,
workload-referenced** :class:`TrialSpec` units via
:func:`~repro.core.traffic.traffic_specs` — one frozen Workload per
point carrying (graph, p, router, demand factory), slim ``(trial,
seed)`` tails.  Both arms ride the demand-matrix chunk kernel
(:mod:`repro.kernels.traffic`): the draw vectorizes per chunk and the
commodity loop is batched through the waypoint pair kernel.
"""

from __future__ import annotations

from repro.core.traffic import (
    PermutationTraffic,
    assemble_traffic,
    traffic_specs,
)
from repro.experiments.registry import register
from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec, pick
from repro.graphs.clos import FatTree
from repro.graphs.hypercube import Hypercube
from repro.routers.waypoint import HypercubeWaypointRouter, WaypointRouter
from repro.runtime import SerialRunner
from repro.util.rng import derive_seed

COLUMNS = [
    "graph",
    "p",
    "commodities",
    "routability",
    "full_delivery_rate",
    "median_queries_per_delivered",
    "median_max_link_load",
    "mean_link_load",
]


def _arms(scale: str) -> list[tuple]:
    dim = pick(scale, tiny=4, small=6, medium=8)
    k = pick(scale, tiny=4, small=4, medium=6)
    return [
        (Hypercube(dim), HypercubeWaypointRouter()),
        (FatTree(k), WaypointRouter()),
    ]


def run(scale: str, seed: int, runner=None) -> ResultTable:
    runner = runner if runner is not None else SerialRunner()
    arms = _arms(scale)
    ps = pick(
        scale,
        tiny=[0.6, 0.9],
        small=[0.5, 0.65, 0.8, 0.9, 0.95],
        medium=[0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    )
    commodities = pick(scale, tiny=4, small=8, medium=16)
    trials = pick(scale, tiny=5, small=12, medium=24)

    table = ResultTable(
        "E18",
        "Permutation traffic vs fault rate: routability and congestion "
        "on hypercube and fat-tree",
        columns=COLUMNS,
    )

    demands = PermutationTraffic(commodities)
    groups = [
        (
            (graph.name, p),
            traffic_specs(
                graph,
                p=p,
                router=router,
                demands=demands,
                trials=trials,
                seed=derive_seed(seed, "e18", graph.name, p),
                key=("e18", graph.name, p),
            ),
        )
        for graph, router in arms
        for p in ps
    ]
    records = runner.run_grouped(groups)

    for graph, router in arms:
        for p in ps:
            m = assemble_traffic(graph, p, router, records[(graph.name, p)])
            table.add_row(
                graph=graph.name,
                p=p,
                commodities=commodities,
                routability=m.routability,
                full_delivery_rate=m.full_delivery_rate,
                median_queries_per_delivered=(
                    m.median_queries_per_delivered()
                ),
                median_max_link_load=m.median_max_link_load(),
                mean_link_load=m.mean_link_load(),
            )
    table.add_note(
        "Pooled routability over a c-commodity permutation traces the "
        "single-pair phase curve with far lower variance, while "
        "full-delivery probability decays roughly like its c-th power; "
        "near the threshold the surviving links inherit their dead "
        "neighbours' traffic, so median max link load rises before "
        "routability visibly falls — congestion is the earlier warning."
    )
    return table


register(
    ExperimentSpec(
        experiment_id="E18",
        title="Permutation traffic vs fault rate (extension)",
        claim=(
            "Offering a c-commodity permutation on a percolated "
            "hypercube or fat-tree, pooled routability reproduces the "
            "single-pair phase transition at lower variance, and link "
            "congestion over the delivered waypoint paths rises ahead "
            "of the routability collapse as p approaches the threshold."
        ),
        reference="Section 6 (extension); cf. E1 single-pair phase",
        run=run,
    )
)
