"""Result tables produced by experiments.

A :class:`ResultTable` is the unit of output: one table per experiment
run, with paper-style rows, free-form notes (fitted exponents, threshold
estimates, theory overlays) and CSV export.  Benchmarks print
``table.render()``; EXPERIMENTS.md records the rendered output next to
the paper's claims.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.util.tables import render_table, write_csv

__all__ = ["ResultTable"]


class ResultTable:
    """Rows + notes for one experiment run."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        columns: Sequence[str] | None = None,
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.columns = list(columns) if columns is not None else None
        self.rows: list[dict] = []
        self.notes: list[str] = []

    def add_row(self, **cells: object) -> None:
        """Append one row (keyword arguments become columns)."""
        if self.columns is not None:
            unknown = set(cells) - set(self.columns)
            if unknown:
                raise ValueError(
                    f"row has columns {sorted(unknown)} outside the declared "
                    f"schema {self.columns}"
                )
        self.rows.append(dict(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form note shown under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list:
        """Return one column as a list (missing cells excluded)."""
        return [row[name] for row in self.rows if name in row]

    def filtered(self, **match: object) -> list[dict]:
        """Return rows whose cells equal all given key/values."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in match.items())
        ]

    def render(self) -> str:
        """Render title, table and notes as printable text."""
        header = f"[{self.experiment_id}] {self.title}"
        parts = [render_table(self.rows, columns=self.columns, title=header)]
        for note in self.notes:
            parts.append(f"  * {note}")
        return "\n".join(parts)

    def to_csv(self, directory: str | Path) -> Path:
        """Write rows as ``<directory>/<experiment_id>.csv``; return path."""
        path = Path(directory) / f"{self.experiment_id.lower()}.csv"
        return write_csv(path, self.rows, columns=self.columns)

    def __len__(self) -> int:
        return len(self.rows)
