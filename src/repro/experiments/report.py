"""Markdown report generation: the EXPERIMENTS.md machinery.

Given experiment specs and their result tables, render the
paper-vs-measured record.  EXPERIMENTS.md in the repository root is
produced by :func:`render_experiments_markdown` over a medium-scale run
(plus hand-written conclusion lines per experiment); users can
regenerate their own with::

    python -m repro report --scale small --out MY_RESULTS.md
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.experiments.results import ResultTable
from repro.experiments.spec import ExperimentSpec

__all__ = ["render_experiment_section", "render_experiments_markdown"]


def render_experiment_section(
    spec: ExperimentSpec,
    table: ResultTable,
    conclusion: str | None = None,
) -> str:
    """Render one experiment as a markdown section."""
    lines = [
        f"## {spec.experiment_id} — {spec.title}",
        "",
        f"**Paper claim ({spec.reference}).** {spec.claim}",
        "",
        "**Measured.**",
        "",
        "```",
        table.render(),
        "```",
    ]
    if conclusion:
        lines += ["", f"**Verdict.** {conclusion}"]
    lines.append("")
    return "\n".join(lines)


def render_experiments_markdown(
    sections: Sequence[tuple[ExperimentSpec, ResultTable]],
    preamble: str = "",
    conclusions: Mapping[str, str] | None = None,
) -> str:
    """Render the full experiments report.

    ``conclusions`` maps experiment ids to verdict strings (what the
    numbers show relative to the paper's asymptotic claim).
    """
    conclusions = conclusions or {}
    parts = []
    if preamble:
        parts.append(preamble.rstrip() + "\n")
    for spec, table in sections:
        parts.append(
            render_experiment_section(
                spec, table, conclusions.get(spec.experiment_id)
            )
        )
    return "\n".join(parts)
