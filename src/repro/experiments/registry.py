"""Registry of all experiments (DESIGN.md §4).

Experiment modules in :mod:`repro.experiments.defs` register themselves
at import; :func:`all_experiments` triggers those imports lazily so that
importing :mod:`repro` stays cheap.
"""

from __future__ import annotations

import importlib

from repro.experiments.spec import ExperimentSpec

__all__ = ["all_experiments", "get_experiment", "register"]

_REGISTRY: dict[str, ExperimentSpec] = {}

#: Modules that define experiments (one per DESIGN.md index entry).
_DEF_MODULES = (
    "repro.experiments.defs.e01_hypercube_phase",
    "repro.experiments.defs.e02_hypercube_lower",
    "repro.experiments.defs.e03_hypercube_upper",
    "repro.experiments.defs.e04_mesh_linear",
    "repro.experiments.defs.e05_mesh_pc",
    "repro.experiments.defs.e06_tt_threshold",
    "repro.experiments.defs.e07_tt_local",
    "repro.experiments.defs.e08_tt_oracle",
    "repro.experiments.defs.e09_gnp_local",
    "repro.experiments.defs.e10_gnp_oracle",
    "repro.experiments.defs.e11_hypercube_giant",
    "repro.experiments.defs.e12_open_question",
    "repro.experiments.defs.e13_middle_regime",
    "repro.experiments.defs.e14_site_faults",
    "repro.experiments.defs.e15_clos_faults",
    "repro.experiments.defs.e16_correlated_faults",
    "repro.experiments.defs.e17_adversarial_budget",
    "repro.experiments.defs.e18_permutation_traffic",
    "repro.experiments.defs.e19_hotspot_skew",
    "repro.experiments.defs.e20_fault_capacity",
    "repro.experiments.defs.a1_conditioning",
    "repro.experiments.defs.a2_waypoint",
    "repro.experiments.defs.a3_gnp_policies",
    "repro.experiments.defs.a4_boundary",
)

_loaded = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (idempotent per id; conflicts raise)."""
    existing = _REGISTRY.get(spec.experiment_id)
    if existing is not None and existing is not spec:
        raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def _load_all() -> None:
    global _loaded
    if _loaded:
        return
    for module in _DEF_MODULES:
        importlib.import_module(module)
    _loaded = True


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Return the spec for an id (case-insensitive)."""
    _load_all()
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def all_experiments() -> list[ExperimentSpec]:
    """Return all registered specs, in index order (E1..E12, then A1..)."""
    _load_all()

    def sort_key(spec: ExperimentSpec):
        head = spec.experiment_id[0]
        number = int("".join(ch for ch in spec.experiment_id if ch.isdigit()))
        return (0 if head == "E" else 1, number)

    return sorted(_REGISTRY.values(), key=sort_key)
