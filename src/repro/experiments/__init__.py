"""Experiment harness: specs, registry, result tables, CLI.

One experiment per theorem-derived claim — see DESIGN.md §4 for the
index and EXPERIMENTS.md for recorded results.  Typical use::

    from repro.experiments import get_experiment
    table = get_experiment("E7")(scale="small", seed=0)
    print(table.render())
"""

from repro.experiments.registry import all_experiments, get_experiment, register
from repro.experiments.results import ResultTable
from repro.experiments.spec import SCALES, ExperimentSpec, pick

__all__ = [
    "SCALES",
    "ExperimentSpec",
    "ResultTable",
    "all_experiments",
    "get_experiment",
    "pick",
    "register",
]
