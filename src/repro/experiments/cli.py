"""Command-line interface: ``python -m repro`` / ``repro``.

Commands::

    repro list                         # index of experiments
    repro info E7                      # claim, reference
    repro run E7 --scale small         # run one experiment, print table
    repro run E1 --workers 4           # parallel trial execution
    repro run E1 --workers 4 --chunksize 8   # fixed specs per work unit
    repro run E1 --backend cluster     # trials on TCP worker nodes
    repro run all --scale tiny --csv results/
    repro worker serve --port 7101     # one cluster worker node
    repro worker serve --port 7101 --node-workers 8   # 8-wide node pool
    repro serve --port 8080            # long-lived experiment service
    repro info                         # resolved backend + cache status

Experiments are deterministic given ``--seed`` — including under
``--workers N`` (or ``$REPRO_WORKERS``), any ``--chunksize`` (or
``$REPRO_CHUNKSIZE``) and any ``--backend`` (or ``$REPRO_BACKEND``),
which parallelise trial execution without changing any result; see
:mod:`repro.runtime`.  ``--backend cluster`` distributes trials over
the ``repro worker serve`` nodes named by ``$REPRO_CLUSTER_NODES``
(``host:port,host:port``), or spawns localhost nodes when unset; each
node executes chunks on a local pool (``--node-workers``, default CPU
count), the coordinator pipelines chunks per connection
(``--pipeline-depth`` / ``$REPRO_PIPELINE_DEPTH``) and requeues the
chunks of a node that goes silent past the heartbeat deadline
(``--heartbeat`` / ``$REPRO_HEARTBEAT`` seconds; 0 disables).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.experiments.registry import all_experiments, get_experiment
from repro.experiments.spec import SCALES
from repro.runtime import available_backends, make_runner

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Routing Complexity of Faulty "
            "Networks' (Angel, Benjamini, Ofek, Wieder; PODC 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")

    sub.add_parser(
        "thresholds", help="print the critical-probability registry"
    )

    info = sub.add_parser(
        "info",
        help="describe one experiment, or the resolved environment",
    )
    info.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help=(
            "experiment id, e.g. E7; omit to print the resolved "
            "backend, result-cache location and entry count instead"
        ),
    )

    run = sub.add_parser("run", help="run experiment(s) and print tables")
    run.add_argument("experiment", help="experiment id, or 'all'")
    run.add_argument(
        "--scale", choices=SCALES, default="small", help="problem size preset"
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--csv", metavar="DIR", default=None, help="also write CSVs here"
    )
    _add_workers_argument(run)

    report = sub.add_parser(
        "report", help="run everything and write a markdown report"
    )
    report.add_argument(
        "--scale", choices=SCALES, default="small", help="problem size preset"
    )
    report.add_argument("--seed", type=int, default=0, help="master seed")
    report.add_argument(
        "--out", metavar="FILE", default="EXPERIMENTS.generated.md"
    )
    _add_workers_argument(report)

    worker = sub.add_parser(
        "worker", help="cluster worker-node commands"
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve",
        help="serve trial chunks over TCP for ClusterRunner coordinators",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "interface to bind (default loopback; the protocol carries "
            "pickles, so only listen where coordinators are trusted)"
        ),
    )
    serve.add_argument(
        "--port",
        type=_port_int,
        default=0,
        help="TCP port; 0 picks an ephemeral port, announced on stdout",
    )
    serve.add_argument(
        "--path",
        action="append",
        default=[],
        metavar="DIR",
        help=(
            "extra import-path entries for unpickling work units whose "
            "kernels live outside the installed package (repeatable)"
        ),
    )
    serve.add_argument(
        "--node-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "local execution-pool size: trials run on this many worker "
            "processes concurrently (default: $REPRO_NODE_WORKERS, "
            "else os.cpu_count())"
        ),
    )
    serve.add_argument(
        "--cache-cap",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "LRU cap on the node's workload-payload cache, in entries; "
            "0 = unbounded (default: $REPRO_NODE_CACHE, else 256); "
            "evicted payloads are re-shipped transparently on demand"
        ),
    )

    service = sub.add_parser(
        "serve",
        help=(
            "serve experiments over HTTP with content-addressed result "
            "caching"
        ),
    )
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default loopback)",
    )
    service.add_argument(
        "--port",
        type=_port_int,
        default=0,
        help="TCP port; 0 picks an ephemeral port, announced on stdout",
    )
    service.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        metavar="B",
        help=(
            "runner backend for job execution: one of %(choices)s "
            "(default: $REPRO_BACKEND, else auto)"
        ),
    )
    service.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for the backend runner",
    )
    service.add_argument(
        "--chunksize",
        type=_positive_int,
        default=None,
        metavar="C",
        help="specs per parallel work unit for the backend runner",
    )
    service.add_argument(
        "--cache-dir",
        type=_cache_directory,
        default=None,
        metavar="DIR",
        help=(
            "result-cache directory (default: $REPRO_CACHE_DIR, else "
            "the XDG cache home); created if missing"
        ),
    )
    service.add_argument(
        "--cache-cap",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "LRU cap on cached sweep points, in entries; 0 = unbounded "
            "(default: $REPRO_CACHE_CAP, else 0)"
        ),
    )
    service.add_argument(
        "--cache-cap-bytes",
        type=_nonnegative_int,
        default=None,
        metavar="BYTES",
        help=(
            "LRU cap on cached sweep points, in total bytes on disk; "
            "0 = unbounded (default: $REPRO_CACHE_CAP_BYTES, else 0)"
        ),
    )
    service.add_argument(
        "--job-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "forget finished jobs this many seconds after completion "
            "(their sweep points stay in the result cache); default: "
            "keep every job for the life of the process"
        ),
    )
    return parser


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 1, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer >= 0, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {text!r}"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a finite number > 0, got {text}"
        )
    return value


def _nonnegative_float(text: str) -> float:
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {text!r}"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a finite number >= 0, got {text}"
        )
    return value


def _cache_directory(text: str) -> str:
    from pathlib import Path

    path = Path(text)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"cache dir exists and is not a directory: {text!r}"
        )
    return text


def _port_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a TCP port number, got {text!r}"
        ) from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be in [0, 65535], got {value}"
        )
    return value


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "worker processes for trial execution (default: "
            "$REPRO_WORKERS, else 1); results are identical for any N"
        ),
    )
    parser.add_argument(
        "--chunksize",
        type=_positive_int,
        default=None,
        metavar="C",
        help=(
            "specs per parallel work unit (default: $REPRO_CHUNKSIZE, "
            "else ~4 chunks per worker); results are identical for any C"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        metavar="B",
        help=(
            "runner backend: one of %(choices)s (default: "
            "$REPRO_BACKEND, else auto); results are identical for any "
            "backend"
        ),
    )
    parser.add_argument(
        "--pipeline-depth",
        type=_positive_int,
        default=None,
        metavar="D",
        help=(
            "cluster backend: chunks kept in flight per node "
            "connection (sets $REPRO_PIPELINE_DEPTH; default 2); "
            "results are identical for any D"
        ),
    )
    parser.add_argument(
        "--heartbeat",
        type=_nonnegative_float,
        default=None,
        metavar="S",
        help=(
            "cluster backend: seconds of node silence before the node "
            "is declared lost and its chunks requeue (sets "
            "$REPRO_HEARTBEAT; default 10; 0 disables supervision)"
        ),
    )


def _cmd_list() -> int:
    for spec in all_experiments():
        print(f"{spec.experiment_id:<4} {spec.title}  [{spec.reference}]")
    return 0


def _cmd_thresholds() -> int:
    from repro.percolation import thresholds as th
    from repro.util.tables import render_table

    rows = [
        {
            "model": f"mesh Z^{d} (bond)",
            "threshold": th.mesh_critical_probability(d),
            "meaning": "giant component",
        }
        for d in sorted(th.MESH_PC)
    ]
    for n in (10, 16, 24):
        rows.append(
            {
                "model": f"hypercube n={n}",
                "threshold": th.hypercube_giant_threshold(n),
                "meaning": "giant component (AKS, 1/n)",
            }
        )
        rows.append(
            {
                "model": f"hypercube n={n}",
                "threshold": th.hypercube_routing_threshold(n),
                "meaning": "routing transition (this paper, n^-1/2)",
            }
        )
    rows.append(
        {
            "model": "hypercube (any n)",
            "threshold": th.hypercube_connectivity_threshold(),
            "meaning": "full connectivity (Erdos-Spencer)",
        }
    )
    rows.append(
        {
            "model": "double tree TT_n",
            "threshold": th.double_tree_threshold(),
            "meaning": "root connectivity (Lemma 6, 1/sqrt(2))",
        }
    )
    rows.append(
        {
            "model": "G(n, c/n)",
            "threshold": 1.0,
            "meaning": "giant component at c = 1",
        }
    )
    print(render_table(rows, title="Critical probabilities"))
    return 0


def _make_kernel_audit_runner():
    """A serial runner that also tallies the kernel/fallback split.

    Counts, for every batch the experiment submits, how many specs
    would execute through a vectorized chunk kernel versus the
    per-trial fallback — the same eligibility decision
    ``execute_specs`` makes at run time — then runs them normally.
    """
    from repro.runtime import SerialRunner
    from repro.runtime.chunkexec import STAGES, kernel_split, stage_split

    class _KernelAuditRunner(SerialRunner):
        def __init__(self) -> None:
            self.kernel = 0
            self.fallback = 0
            self.demand_specs = 0
            self.stages = {
                stage: {"kernel": 0, "per-trial": 0} for stage in STAGES
            }

        def run(self, specs):
            specs = list(specs)
            kernel, fallback = kernel_split(specs)
            self.kernel += kernel
            self.fallback += fallback
            self.demand_specs += sum(
                1 for spec in specs if _routes_demands(spec)
            )
            for stage, counts in stage_split(specs).items():
                for mode, n in counts.items():
                    self.stages[stage][mode] += n
            return super().run(specs)

    return _KernelAuditRunner()


def _routes_demands(spec) -> bool:
    """Whether a spec's trial unit is a demand matrix (traffic trial)."""
    fn = getattr(spec.workload, "fn", None)
    return getattr(fn, "__qualname__", None) == "run_traffic_trial"


def _kernel_audit_line(spec) -> str:
    audit = _make_kernel_audit_runner()
    spec(scale="tiny", seed=0, runner=audit)
    total = audit.kernel + audit.fallback
    if audit.kernel and not audit.fallback:
        shape = "vectorized chunk kernel"
    elif audit.kernel:
        shape = "vectorized chunk kernel + per-trial fallback"
    else:
        shape = "per-trial fallback"
    # A kernel-eligible spec can still run individual stages per trial
    # (e.g. an unregistered router drops only the routing stage), so
    # break the split down per pipeline stage underneath the headline.
    # Demand-matrix trials route every commodity of a chunk through one
    # batched frontier pass — name that explicitly on the routing stage.
    def _label(stage: str) -> str:
        if stage == "routing" and audit.demand_specs:
            return "routing (commodity-batched)"
        return stage

    stages = "  ".join(
        f"{_label(stage)} {counts['kernel']}/{total} kernel"
        for stage, counts in audit.stages.items()
    )
    return (
        f"execution: {shape} "
        f"({audit.kernel}/{total} specs kernel-eligible at tiny scale)"
        f"\nstages: {stages}"
    )


def _cmd_info(experiment_id: str | None) -> int:
    if experiment_id is None:
        return _cmd_info_environment()
    spec = get_experiment(experiment_id)
    print(f"{spec.experiment_id}: {spec.title}")
    print(f"reference: {spec.reference}")
    print(f"claim: {spec.claim}")
    print(_kernel_audit_line(spec))
    return 0


def _cmd_info_environment() -> int:
    """``repro info`` with no experiment: the resolved environment —
    which backend a run would use, where the result cache lives and how
    full it is, and the code version that keys new cache entries."""
    from repro.runtime import resolve_backend
    from repro.serve import ResultCache, code_version, resolve_cache_dir

    cache_dir = resolve_cache_dir()
    print(f"backend: {resolve_backend()}")
    print(f"cache dir: {cache_dir}")
    print(f"cache entries: {ResultCache(cache_dir).entry_count()}")
    print(f"code version: {code_version()}")
    print(f"experiments: {len(all_experiments())}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ExperimentService

    service = ExperimentService(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        chunksize=args.chunksize,
        cache_dir=args.cache_dir,
        cache_cap=args.cache_cap,
        cache_cap_bytes=args.cache_cap_bytes,
        job_ttl=args.job_ttl,
    )

    def _announce(svc) -> None:
        print(
            f"repro service on {svc.address} "
            f"(backend={svc.backend}, cache={svc.cache.directory})",
            flush=True,
        )

    service.serve_forever(ready=_announce)
    return 0


def _cmd_run(
    experiment_id: str,
    scale: str,
    seed: int,
    csv_dir,
    workers,
    chunksize,
    backend,
) -> int:
    if experiment_id.lower() == "all":
        specs = all_experiments()
    else:
        specs = [get_experiment(experiment_id)]
    # The runner (and its worker pool or cluster connections, if
    # parallel) is shared by every experiment of the invocation, so
    # `run all --workers N` pays start-up once, not once per experiment.
    with make_runner(workers, chunksize, backend=backend) as runner:
        for spec in specs:
            start = time.perf_counter()
            table = spec(scale=scale, seed=seed, runner=runner)
            elapsed = time.perf_counter() - start
            print(table.render())
            print(f"  ({len(table)} rows, {elapsed:.1f}s, scale={scale})")
            print()
            if csv_dir is not None:
                path = table.to_csv(csv_dir)
                print(f"  wrote {path}")
    return 0


def _cmd_report(
    scale: str, seed: int, out: str, workers, chunksize, backend
) -> int:
    from pathlib import Path

    from repro.experiments.report import render_experiments_markdown

    sections = []
    with make_runner(workers, chunksize, backend=backend) as runner:
        for spec in all_experiments():
            print(f"running {spec.experiment_id} ({scale}) ...", flush=True)
            sections.append(
                (spec, spec(scale=scale, seed=seed, runner=runner))
            )
    preamble = (
        "# Experiment report (generated)\n\n"
        f"Scale: {scale}; master seed: {seed}.  See DESIGN.md for the "
        "experiment index and EXPERIMENTS.md for the curated record."
    )
    Path(out).write_text(
        render_experiments_markdown(sections, preamble=preamble),
        encoding="utf-8",
    )
    print(f"wrote {out}")
    return 0


def _cmd_worker_serve(
    host: str, port: int, paths, node_workers, cache_cap
) -> int:
    from repro.runtime.cluster import serve

    for path in reversed(paths):
        sys.path.insert(0, path)
    serve(host, port, node_workers=node_workers, cache_cap=cache_cap)
    return 0


def _apply_cluster_env(args) -> None:
    """Forward the cluster-only run/report flags through their env
    vars (the one channel every construction path already honours)."""
    import os

    if getattr(args, "pipeline_depth", None) is not None:
        os.environ["REPRO_PIPELINE_DEPTH"] = str(args.pipeline_depth)
    if getattr(args, "heartbeat", None) is not None:
        os.environ["REPRO_HEARTBEAT"] = repr(args.heartbeat)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "thresholds":
        return _cmd_thresholds()
    if args.command == "info":
        return _cmd_info(args.experiment)
    if args.command == "run":
        _apply_cluster_env(args)
        return _cmd_run(
            args.experiment,
            args.scale,
            args.seed,
            args.csv,
            args.workers,
            args.chunksize,
            args.backend,
        )
    if args.command == "report":
        _apply_cluster_env(args)
        return _cmd_report(
            args.scale,
            args.seed,
            args.out,
            args.workers,
            args.chunksize,
            args.backend,
        )
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        if args.worker_command == "serve":
            return _cmd_worker_serve(
                args.host,
                args.port,
                args.path,
                args.node_workers,
                args.cache_cap,
            )
        raise AssertionError(
            f"unhandled worker command {args.worker_command!r}"
        )
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
