#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the medium-scale run logs.

Reads the rendered experiment tables out of results/medium_run*.log,
pairs them with registry metadata and the curated verdicts below, and
writes /root/repo/EXPERIMENTS.md.
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.registry import all_experiments  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
LOGS = [
    ROOT / "results" / "medium_run.log",
    ROOT / "results" / "medium_run2.log",
    ROOT / "results" / "medium_run3.log",
]

HEADER_RE = re.compile(r"^\[(E\d+|A\d+)\] ")
END_RE = re.compile(r"^\s+\(\d+ rows, [\d.]+s, scale=medium\)")

VERDICTS = {  # curated, hand-written per experiment — see EXPERIMENTS.md
}


def extract_sections() -> dict[str, str]:
    sections: dict[str, str] = {}
    for log in LOGS:
        if not log.exists():
            continue
        lines = log.read_text().splitlines()
        current_id = None
        buffer: list[str] = []
        for line in lines:
            match = HEADER_RE.match(line)
            if match:
                current_id = match.group(1)
                buffer = [line]
                continue
            if current_id is None:
                continue
            if END_RE.match(line):
                buffer.append(line.strip())
                sections[current_id] = "\n".join(buffer)
                current_id = None
                continue
            buffer.append(line)
    return sections


def main(verdicts: dict[str, str]) -> None:
    sections = extract_sections()
    parts = [PREAMBLE]
    for spec in all_experiments():
        body = sections.get(spec.experiment_id)
        if body is None:
            print(f"WARNING: no medium table found for {spec.experiment_id}")
            continue
        parts.append(f"## {spec.experiment_id} — {spec.title}\n")
        parts.append(f"**Paper claim ({spec.reference}).** {spec.claim}\n")
        parts.append("**Measured (scale=medium, seed=0).**\n")
        parts.append("```\n" + body + "\n```\n")
        verdict = verdicts.get(spec.experiment_id)
        if verdict:
            parts.append(f"**Verdict.** {verdict}\n")
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {out} ({len(sections)} sections)")


PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Every theorem-level claim of *Routing Complexity of Faulty Networks*
(Angel–Benjamini–Ofek–Wieder, PODC 2005) mapped to an experiment and
measured.  The paper is asymptotic theory with **no numbered figures or
tables**; the experiment IDs (E1–E14, A1–A4) are defined in DESIGN.md §4.
Absolute numbers are simulator-specific; what must (and does) reproduce
is the *shape*: who wins, by what order, and where transitions fall.

All tables regenerate with

```
python -m repro run <ID> --scale medium --seed 0
```

(or `--scale small` for the faster versions the benchmark suite runs);
`pytest benchmarks/ --benchmark-only` asserts the qualitative shape of
every experiment below.  Finite-size caveats are called out per
experiment — the theorems are n → ∞ statements, our graphs have
thousands of vertices.
"""


if __name__ == "__main__":
    import json

    verdicts_file = ROOT / "results" / "verdicts.json"
    verdicts = (
        json.loads(verdicts_file.read_text()) if verdicts_file.exists() else {}
    )
    main(verdicts)
